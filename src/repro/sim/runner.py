"""Batch running: benchmark x technique sweeps with Table 3/4/5 aggregation.

A *controller factory* is any callable ``(supply_config, processor_config)
-> NoiseController``; the runner builds a fresh processor and supply per
run (so runs are independent and deterministic), executes the base
configuration once per benchmark, and reports each technique's metrics
relative to it.

Sweeps are *resilient*: a :class:`ResilienceConfig` adds per-cell
wall-clock timeouts, bounded retry with deterministic re-seeding, and a
JSON checkpoint written after every completed (benchmark, technique, seed)
cell, so a killed sweep resumes exactly where it stopped (see
``docs/robustness.md``).  Cells that exhaust their retry budget become
structured :class:`FailureReport` entries on the :class:`TechniqueSummary`
instead of aborting the whole sweep.

Sweeps are also *parallel*: ``ResilienceConfig(workers=N)`` dispatches the
(benchmark, seed) cell grid to a ``ProcessPoolExecutor``.  Each worker
process rebuilds its own :class:`BenchmarkRunner` from a picklable spec --
no simulator state ever crosses a process boundary -- and keeps a warm
base-run cache across the cells it executes.  Cells are deterministic and
independent (retry attempt ``k`` always reseeds to ``seed + 104729 * k``),
so the parallel backend produces aggregates, checkpoints and failure
reports bit-identical to the sequential one: checkpoints are written from
the parent in completion order but keyed by the same cell keys, and rows
are always aggregated in grid order.
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import json
import multiprocessing
import os
import pickle
import random
import re
import signal
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, fields
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import (
    PowerSupplyConfig,
    ProcessorConfig,
    TABLE1_PROCESSOR,
    TABLE1_SUPPLY,
)
from repro.core.controller import NoiseController, NullController
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    FaultError,
    HarnessError,
    SweepInterrupted,
    WorkerLostError,
)
from repro import obs
from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.obs.log import warn_once
from repro.power.supply import PowerSupply
from repro.sim.backends import SweepJob, select_backend
from repro.sim.metrics import RelativeMetrics, SimulationResult
from repro.sim.simulation import Simulation
from repro.uarch.processor import Processor
from repro.uarch.workloads import SPEC2K

__all__ = [
    "SweepConfig",
    "ResilienceConfig",
    "FailureReport",
    "TechniqueSummary",
    "SeedStatistics",
    "BenchmarkRunner",
    "summarize",
    "load_checkpoint",
    "DEFAULT_RESILIENCE",
]

ControllerFactory = Callable[[PowerSupplyConfig, ProcessorConfig], NoiseController]
SupplyTransform = Callable[[PowerSupply, str], PowerSupply]

#: Process-wide fallback resilience, installed temporarily by
#: :func:`repro.experiments.registry.run_experiment` so experiments that
#: build their own runners deep inside still honour ``--resume`` /
#: ``--timeout-s`` / ``--max-retries`` / ``--workers`` without threading a
#: parameter through every experiment signature.
DEFAULT_RESILIENCE: Optional["ResilienceConfig"] = None

#: Seed stride between retry attempts: a failed cell re-runs on a freshly
#: regenerated trace whose seed is a deterministic function of (profile
#: seed, attempt), so retries are reproducible run to run.
_RESEED_STRIDE = 104_729

#: Version tag of the checkpoint JSON schema.  Version 2 adds the
#: ``_meta`` header (content checksum + sweep parameters, serialized
#: *before* the cells so a truncated file keeps it) and per-cell record
#: digests; version-1 files are still readable.
_CHECKPOINT_VERSION = 2

#: How often the parallel supervisor wakes to check heartbeats and drain
#: requests while no future has completed, in seconds.
_SUPERVISOR_POLL_S = 0.2


@dataclass(frozen=True)
class SweepConfig:
    """How long and on what hardware to run each benchmark."""

    n_cycles: int = 60_000
    warmup_cycles: int = 2_000
    supply: PowerSupplyConfig = TABLE1_SUPPLY
    processor: ProcessorConfig = TABLE1_PROCESSOR
    trace_instructions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_cycles <= 0:
            raise ConfigurationError("n_cycles must be positive")
        if self.warmup_cycles < 0:
            raise ConfigurationError("warmup_cycles must be non-negative")
        if self.trace_instructions is not None and self.trace_instructions <= 0:
            raise ConfigurationError(
                "trace_instructions must be positive when set"
            )

    def instructions(self) -> int:
        if self.trace_instructions is not None:
            return self.trace_instructions
        # Enough instructions that no workload wraps more than a few times.
        return max(50_000, int((self.n_cycles + self.warmup_cycles) * 4.5))


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault tolerance and execution backend for a sweep."""

    #: wall-clock budget per (benchmark, technique, seed) cell; None = none
    timeout_s: Optional[float] = None
    #: extra attempts after the first, each on a deterministically re-seeded
    #: trace (seed = profile seed + 104729 * attempt)
    max_retries: int = 0
    #: JSON file updated after every completed cell; None disables
    checkpoint_path: Optional[str] = None
    #: load the checkpoint and skip already-completed cells
    resume: bool = False
    #: worker processes executing sweep cells; 1 = in-process (sequential),
    #: 0 = none launched locally (sequential on auto; external workers
    #: only on the distributed backend)
    workers: int = 1
    #: a parallel worker whose current cell has not progressed for this
    #: many seconds is presumed hung, killed, and its cell requeued;
    #: None disables heartbeat supervision
    heartbeat_stale_s: Optional[float] = None
    #: how many times one cell may be requeued after losing its worker
    #: (killed, OOM'd, or heartbeat-stale) before it is parked as a
    #: WorkerLostError failure
    max_worker_restarts: int = 2
    #: first-retry backoff delay; attempt k sleeps base * 2^(k-1) seconds
    #: scaled by deterministic jitter in [0.5, 1.5); 0 disables sleeping
    backoff_base_s: float = 0.0
    #: ceiling on any single backoff sleep
    backoff_max_s: float = 30.0
    #: park the remaining (benchmark, seed) cells of a benchmark whose
    #: first pending cell exhausted its retry budget, instead of burning
    #: the full budget once per seed
    circuit_breaker: bool = True
    #: after SIGTERM/SIGINT, how long the parallel drain waits for
    #: in-flight cells before killing the pool and exiting resumable
    drain_deadline_s: float = 10.0
    #: execution backend: "auto" (workers > 1 means the local process
    #: pool, else sequential), or force "sequential" / "pool" / "dist"
    backend: str = "auto"
    #: distributed backend: seconds a worker holds a cell's lease before
    #: the scheduler presumes it lost and requeues the cell (renewed at
    #: every retry attempt the worker reports)
    lease_timeout_s: float = 60.0
    #: distributed backend: quarantine a worker (stop leasing to it)
    #: after this many attributed failures -- expired leases, dropped
    #: connections, crashes
    quarantine_failures: int = 3
    #: distributed backend: if no worker has connected this many seconds
    #: after the scheduler starts listening, degrade to the local pool
    #: backend instead of stalling the sweep
    connect_deadline_s: float = 10.0
    #: distributed backend transport: "unix" (socketpair-fast, same
    #: host) or "tcp" (127.0.0.1; the shape of a multi-host deployment)
    dist_transport: str = "unix"
    #: directory of the content-addressed trace record/replay store
    #: (:mod:`repro.trace`): base-schedule cells record their current
    #: trace on the first run of a front end and replay it (bit-exactly)
    #: afterwards; None disables record/replay entirely
    trace_store_path: Optional[str] = None
    #: master switch for the record/replay layer; ``False`` (the
    #: ``--no-replay`` flag) runs every cell as a full simulation and
    #: records nothing, even when a store path is configured
    replay: bool = True

    def __post_init__(self) -> None:
        # Validation happens at construction -- with ResilienceConfigError
        # (both a ConfigurationError and a HarnessError) and a message
        # naming the offending knob and value -- so a bad config fails the
        # command immediately instead of failing mid-sweep.
        from repro.errors import ResilienceConfigError

        def reject(message: str) -> None:
            raise ResilienceConfigError(message)

        if self.timeout_s is not None and self.timeout_s <= 0:
            reject(
                f"timeout_s must be positive when set, got {self.timeout_s!r}"
            )
        if self.max_retries < 0:
            reject(
                f"max_retries must be non-negative, got {self.max_retries!r}"
            )
        if self.resume and self.checkpoint_path is None:
            reject("resume requires a checkpoint_path")
        if self.workers < 0:
            reject(
                f"workers must be non-negative, got {self.workers!r}"
                f" (0 = no local workers, 1 = sequential, N = fan out)"
            )
        if self.heartbeat_stale_s is not None and self.heartbeat_stale_s <= 0:
            reject(
                f"heartbeat_stale_s must be positive when set,"
                f" got {self.heartbeat_stale_s!r}"
            )
        if self.max_worker_restarts < 0:
            reject(
                f"max_worker_restarts must be non-negative,"
                f" got {self.max_worker_restarts!r}"
            )
        if self.backoff_base_s < 0:
            reject(
                f"backoff_base_s must be non-negative,"
                f" got {self.backoff_base_s!r}"
            )
        if self.backoff_max_s < 0:
            reject(
                f"backoff_max_s must be non-negative,"
                f" got {self.backoff_max_s!r}"
            )
        if self.backoff_base_s > 0 and self.backoff_max_s < self.backoff_base_s:
            reject(
                f"backoff_max_s ({self.backoff_max_s!r}) must be at least"
                f" backoff_base_s ({self.backoff_base_s!r})"
            )
        if self.drain_deadline_s <= 0:
            reject(
                f"drain_deadline_s must be positive,"
                f" got {self.drain_deadline_s!r}"
            )
        from repro.sim.backends import BACKEND_CHOICES

        if self.backend not in BACKEND_CHOICES:
            reject(
                f"backend must be one of {', '.join(BACKEND_CHOICES)},"
                f" got {self.backend!r}"
            )
        if self.lease_timeout_s <= 0:
            reject(
                f"lease_timeout_s must be positive,"
                f" got {self.lease_timeout_s!r}"
            )
        if self.quarantine_failures < 1:
            reject(
                f"quarantine_failures must be at least 1,"
                f" got {self.quarantine_failures!r}"
            )
        if self.connect_deadline_s <= 0:
            reject(
                f"connect_deadline_s must be positive,"
                f" got {self.connect_deadline_s!r}"
            )
        if self.dist_transport not in ("unix", "tcp"):
            reject(
                f"dist_transport must be 'unix' or 'tcp',"
                f" got {self.dist_transport!r}"
            )
        if self.trace_store_path is not None and not str(self.trace_store_path):
            reject("trace_store_path must be a non-empty path when set")


@dataclass(frozen=True)
class FailureReport:
    """One sweep cell that did not produce a result.

    ``skipped`` distinguishes cells that were never attempted -- parked by
    the circuit breaker after their benchmark's probe cell failed -- from
    cells that genuinely exhausted their retry budget (``skipped=False``).
    Worker-supervision incidents (a killed or heartbeat-stale worker, with
    the cell later requeued) reuse this shape on the summary's
    ``incidents`` attribute.
    """

    benchmark: str
    technique: str
    seed: Optional[int]
    attempts: int
    error_type: str
    message: str
    skipped: bool = False


@dataclass(frozen=True)
class SeedStatistics:
    """Mean / spread of one technique on one benchmark across trace seeds.

    Seeds regenerate the synthetic trace from the same statistical profile,
    so the spread measures sensitivity to the particular random instruction
    stream rather than to the workload's character.
    """

    benchmark: str
    technique: str
    n_seeds: int
    mean_slowdown: float
    std_slowdown: float
    mean_energy_delay: float
    std_energy_delay: float
    max_violation_fraction: float
    runs: Tuple[RelativeMetrics, ...]


@dataclass(frozen=True)
class TechniqueSummary:
    """Aggregate of one technique over many benchmarks (a table row).

    Summaries returned by :meth:`BenchmarkRunner.sweep` additionally carry
    a ``timings`` attribute -- a per-phase wall-clock breakdown (setup /
    execute / checkpoint_io / aggregate / total seconds plus the worker
    count and cell counts) -- and an ``incidents`` attribute, the tuple of
    supervision events (dead or heartbeat-stale workers that were killed
    and their cells requeued) as :class:`FailureReport`-shaped records.
    Both are diagnostics attached outside the dataclass fields, so equality
    and serialisation of summaries stay environment-independent (a resumed
    or worker-crashed-and-requeued sweep still compares byte-identical to
    an undisturbed one).
    """

    technique: str
    avg_slowdown: float
    worst_slowdown: float
    worst_benchmark: str
    apps_over_15_percent: int
    avg_energy_delay: float
    avg_first_level_fraction: float
    avg_second_level_fraction: float
    total_violation_cycles: int
    per_benchmark: Tuple[RelativeMetrics, ...]
    failures: Tuple[FailureReport, ...] = ()


# ----------------------------------------------------------------------
# Checkpoint I/O
# ----------------------------------------------------------------------

def _cell_key(
    ordinal: int, benchmark: str, technique: str, seed: Optional[int]
) -> str:
    """Checkpoint key of one cell.

    ``ordinal`` is the index of the sweep within its runner: experiments
    routinely sweep several *variants* of one technique (same controller
    name, different knobs) through one runner, and the ordinal keeps their
    cells distinct.  Re-running the same experiment replays the same sweep
    order, so ordinals are stable across a kill/resume boundary.
    """
    return f"s{ordinal}|{benchmark}|{technique}|{'-' if seed is None else seed}"


def _canonical_json(obj) -> str:
    """Stable serialisation used for every digest and checksum."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _content_digest(obj) -> str:
    return hashlib.sha256(_canonical_json(obj).encode("utf-8")).hexdigest()


#: Injection point for the chaos harness (and a seam for exotic
#: filesystems): every checkpoint fsync goes through here.
_fsync = os.fsync


def _fsync_directory(directory: str) -> None:
    """Persist a rename by fsyncing its directory (no-op where unsupported)."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        _fsync(fd)
    except OSError as error:
        if error.errno not in (errno.EINVAL, errno.ENOTSUP, errno.EBADF):
            raise
    finally:
        os.close(fd)


def _atomic_write_json(path: str, payload: dict) -> None:
    """Durable write-temp-fsync-rename-fsync-dir replacement of ``path``.

    The temp file is fsynced before ``os.replace`` and the containing
    directory after it, so a host crash at any instant leaves either the
    old complete file or the new complete file -- never an empty or
    half-written one behind the rename.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.tmp"
    registry = obs_metrics.active_registry()
    try:
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle, indent=0, sort_keys=True)
            written_bytes = handle.tell()
            handle.flush()
            _fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.remove(tmp_path)
        raise
    _fsync_directory(directory)
    if registry is not None:
        registry.counter(
            "runner_checkpoint_bytes_total",
            help="bytes durably written through the checkpoint path",
        ).inc(written_bytes)
        registry.counter(
            "runner_checkpoint_fsyncs_total",
            help="fsync calls issued by durable checkpoint writes"
                 " (file plus directory)",
        ).inc(2)


def _checkpoint_payload(
    n_cycles: int, warmup_cycles: int, cells: Dict[str, dict]
) -> dict:
    """The self-validating on-disk form of a checkpoint.

    ``_meta`` sorts before ``cells``, so ``indent=0`` serialisation puts
    the checksum and sweep parameters on the first lines of the file --
    a tail truncation loses cell records, never the header.
    """
    cell_block = {
        key: {"digest": _content_digest(record), "metrics": record}
        for key, record in cells.items()
    }
    return {
        "_meta": {
            "checksum": _content_digest(cell_block),
            "n_cycles": n_cycles,
            "version": _CHECKPOINT_VERSION,
            "warmup_cycles": warmup_cycles,
        },
        "cells": cell_block,
    }


def _write_checkpoint(path: str, payload: dict) -> None:
    """Atomically and durably replace the checkpoint file."""
    _atomic_write_json(path, payload)


def _quarantine_corrupt(path: str) -> str:
    """Move a corrupt checkpoint aside to ``<path>.corrupt-<n>``."""
    n = 0
    while True:
        candidate = f"{path}.corrupt-{n}"
        if not os.path.exists(candidate):
            break
        n += 1
    os.replace(path, candidate)
    return candidate


#: One serialized v2 cell record, as written by ``json.dump(indent=0)``:
#: the key, its digest, and a flat metrics object (RelativeMetrics holds
#: only scalars and strings, so the inner object never nests).
_CELL_RECORD_RE = re.compile(
    r'"((?:s\d+\|)[^"\n]*)":\s*\{\s*"digest":\s*"([0-9a-f]{64})",'
    r'\s*"metrics":\s*(\{[^{}]*\})\s*\}',
    re.DOTALL,
)


def _salvage_cells(text: str) -> Dict[str, dict]:
    """Digest-validated cell records recoverable from corrupt file text."""
    salvaged: Dict[str, dict] = {}
    for match in _CELL_RECORD_RE.finditer(text):
        key, digest, metrics_text = match.groups()
        try:
            record = json.loads(metrics_text)
        except ValueError:
            continue
        if _content_digest(record) == digest:
            salvaged[key] = record
    return salvaged


def _salvage_meta(text: str) -> Dict[str, Optional[int]]:
    """Sweep parameters recoverable from a corrupt file's ``_meta`` header."""
    recovered: Dict[str, Optional[int]] = {}
    for field in ("n_cycles", "warmup_cycles"):
        match = re.search(rf'"{field}":\s*(\d+)', text)
        recovered[field] = int(match.group(1)) if match else None
    return recovered


def _normalized_checkpoint(
    version: int,
    n_cycles: Optional[int],
    warmup_cycles: Optional[int],
    cells: Dict[str, dict],
    salvaged: bool = False,
    quarantined: Optional[str] = None,
) -> dict:
    return {
        "version": version,
        "n_cycles": n_cycles,
        "warmup_cycles": warmup_cycles,
        "cells": cells,
        "salvaged": salvaged,
        "quarantined": quarantined,
    }


def _salvage_checkpoint(path: str, text: str, reason: str) -> dict:
    """Recover the digest-valid subset of a corrupt checkpoint.

    The corrupt original is quarantined to ``<path>.corrupt-<n>`` (so the
    next durable write starts clean and the evidence survives) and a
    RuntimeWarning names both the damage and the salvage yield.
    """
    cells = _salvage_cells(text)
    meta = _salvage_meta(text)
    quarantined = _quarantine_corrupt(path)
    warn_once(
        f"checkpoint {path!r} is corrupt ({reason}); salvaged"
        f" {len(cells)} digest-valid cell(s), quarantined the original to"
        f" {quarantined!r}",
        stacklevel=3,
    )
    return _normalized_checkpoint(
        _CHECKPOINT_VERSION,
        meta["n_cycles"],
        meta["warmup_cycles"],
        cells,
        salvaged=True,
        quarantined=quarantined,
    )


def load_checkpoint(path: str, salvage: bool = False) -> dict:
    """Read and verify a sweep checkpoint.

    Returns a normalized dictionary with ``version``, ``n_cycles``,
    ``warmup_cycles``, ``cells`` (cell key -> metrics record), ``salvaged``
    and ``quarantined`` entries regardless of the on-disk schema version.

    Integrity is verified end to end: the ``_meta`` checksum must match
    the cell block, and every cell record must match its own digest.  With
    ``salvage=False`` (the default) any damage -- missing file, truncated
    or bit-flipped JSON, wrong payload type, checksum or digest mismatch
    -- raises :class:`~repro.errors.CheckpointError` naming the path and a
    recovery hint.  With ``salvage=True`` a damaged file is quarantined to
    ``<path>.corrupt-<n>`` and the digest-valid subset of its cells is
    returned instead, so ``--resume`` keeps every provably good cell and
    recomputes only the rest.
    """
    try:
        with open(path) as handle:
            text = handle.read()
    except FileNotFoundError:
        raise CheckpointError(
            path,
            "file does not exist",
            hint="run without --resume to start fresh, or point --checkpoint"
                 " at the file a previous run actually wrote",
        ) from None
    try:
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(
                f"payload is {type(data).__name__}, expected an object"
            )
    except ValueError as error:
        if salvage:
            return _salvage_checkpoint(path, text, str(error))
        raise CheckpointError(
            path,
            f"unreadable JSON ({error})",
            hint="the file is truncated or corrupt; --resume salvages the"
                 " valid cells automatically, or delete it to start fresh",
        ) from None

    if "_meta" not in data:  # legacy version-1 schema: no integrity data
        version = data.get("version")
        if version != 1:
            raise CheckpointError(
                path,
                f"has version {version!r}, expected 1 or"
                f" {_CHECKPOINT_VERSION}",
                hint="this file was written by an incompatible release;"
                     " delete it or regenerate the sweep",
            )
        cells = data.get("cells", {})
        if not isinstance(cells, dict):
            raise CheckpointError(
                path, "legacy 'cells' entry is not an object",
                hint="delete the file and rerun without --resume",
            )
        return _normalized_checkpoint(
            1, data.get("n_cycles"), data.get("warmup_cycles"), dict(cells)
        )

    meta = data["_meta"]
    cell_block = data.get("cells")
    damage = None
    if not isinstance(meta, dict) or not isinstance(cell_block, dict):
        damage = "malformed _meta/cells structure"
    elif meta.get("version") != _CHECKPOINT_VERSION:
        raise CheckpointError(
            path,
            f"has version {meta.get('version')!r},"
            f" expected {_CHECKPOINT_VERSION}",
            hint="this file was written by an incompatible release;"
                 " delete it or regenerate the sweep",
        )
    elif _content_digest(cell_block) != meta.get("checksum"):
        damage = "content checksum mismatch"
    if damage is None:
        cells = {}
        for key, record in cell_block.items():
            if (
                not isinstance(record, dict)
                or _content_digest(record.get("metrics")) != record.get("digest")
            ):
                damage = f"cell {key!r} fails its digest"
                break
            cells[key] = record["metrics"]
    if damage is not None:
        if salvage:
            return _salvage_checkpoint(path, text, damage)
        raise CheckpointError(
            path,
            damage,
            hint="the file was corrupted on disk; --resume salvages the"
                 " valid cells automatically, or delete it to start fresh",
        )
    return _normalized_checkpoint(
        _CHECKPOINT_VERSION, meta.get("n_cycles"), meta.get("warmup_cycles"),
        cells,
    )


def _metrics_from_dict(data: dict) -> RelativeMetrics:
    names = {f.name for f in fields(RelativeMetrics)}
    return RelativeMetrics(**{k: v for k, v in data.items() if k in names})


def _circuit_open_report(
    benchmark: str, technique: str, seed: Optional[int]
) -> FailureReport:
    """A cell parked (never attempted) by the per-benchmark circuit breaker."""
    return FailureReport(
        benchmark=benchmark,
        technique=technique,
        seed=seed,
        attempts=0,
        error_type="CircuitOpen",
        message=(
            f"parked by the circuit breaker: the first pending cell of"
            f" {benchmark!r} exhausted its retry budget"
        ),
        skipped=True,
    )


def _worker_lost_report(
    benchmark: str, technique: str, seed: Optional[int],
    losses: int, detail: str,
) -> FailureReport:
    """A cell abandoned after repeatedly losing its worker process."""
    return FailureReport(
        benchmark=benchmark,
        technique=technique,
        seed=seed,
        attempts=losses,
        error_type=WorkerLostError.__name__,
        message=detail,
    )


# ----------------------------------------------------------------------
# Per-cell timeouts
# ----------------------------------------------------------------------

def _call_with_alarm(fn: Callable[[], object], timeout_s: float):
    """Interrupt ``fn`` with SIGALRM after ``timeout_s`` (main thread only).

    The interval timer preempts the running cell in place -- no helper
    thread is created, so a timed-out cell leaves nothing behind.  The
    previous handler and timer are restored on exit; a pre-existing
    ITIMER_REAL is re-armed with whatever time it had left (minus the
    cell's elapsed time), so an ambient timer is delayed at worst, never
    silently cancelled.
    """

    def on_alarm(signum, frame):
        raise FaultError(
            f"run exceeded the wall-clock timeout of {timeout_s:g} s"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    started = time.monotonic()
    prev_delay, prev_interval = signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if prev_delay > 0.0:
            remaining = prev_delay - (time.monotonic() - started)
            # An ambient timer that came due while the cell ran still has
            # to fire: deliver it almost immediately rather than dropping it.
            signal.setitimer(
                signal.ITIMER_REAL, max(remaining, 1e-6), prev_interval
            )


def _call_with_thread(fn: Callable[[], object], timeout_s: float):
    """Legacy timeout for contexts where SIGALRM is unavailable.

    The work runs on a daemon thread; on expiry the thread is abandoned
    (Python offers no preemptive kill off the main thread) and a
    :class:`FaultError` raised.
    """
    outcome: dict = {}

    def target():
        try:
            outcome["value"] = fn()
        except BaseException as error:  # propagate to the caller's thread
            outcome["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise FaultError(
            f"run exceeded the wall-clock timeout of {timeout_s:g} s"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


def _call_with_timeout(fn: Callable[[], object], timeout_s: Optional[float]):
    """Run ``fn`` bounded by ``timeout_s`` of wall-clock time.

    On the main thread of a process (the sequential sweep loop, and every
    pool worker) the bound is enforced with an interval timer, which
    preempts the cell without spawning -- or leaking -- any thread.  Off
    the main thread, or where SIGALRM does not exist, the old abandon-a-
    daemon-thread fallback applies.  Without a timeout, runs inline.
    """
    if timeout_s is None:
        return fn()
    if (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):
        return _call_with_alarm(fn, timeout_s)
    return _call_with_thread(fn, timeout_s)


def _merge_worker_telemetry(telemetry: Optional[dict]) -> None:
    """Fold a worker's per-cell metrics snapshot into the parent registry.

    Snapshots are additive deltas (the worker registry is reset at cell
    start), so the merge is commutative: the combined totals do not depend
    on completion order.
    """
    if telemetry is None:
        return
    registry = obs_metrics.active_registry()
    if registry is not None:
        registry.merge(telemetry)


def _maybe_span(tracer, name: str, args: Optional[dict] = None):
    """A tracer span, or an inert context when tracing is disabled.

    Either way the ``with`` statement binds a mutable args dict, so
    instrumented code can attach results unconditionally.
    """
    if tracer is None:
        return contextlib.nullcontext(dict(args or {}))
    return tracer.span(name, cat=obs_trace.CAT_PHASE, args=args)


# ----------------------------------------------------------------------
# Retry backoff and graceful-drain plumbing
# ----------------------------------------------------------------------

def _backoff_delay_s(
    technique: str,
    benchmark: str,
    seed: Optional[int],
    attempt: int,
    base_s: float,
    max_s: float,
) -> float:
    """Deterministic exponential backoff with seeded jitter.

    Attempt ``k`` (k >= 1) sleeps ``base * 2^(k-1)`` seconds, capped at
    ``max_s``, scaled by a jitter factor in [0.5, 1.5) drawn from an RNG
    seeded on the cell identity -- so two runs of the same sweep back off
    identically, but a grid of cells does not thunder in lockstep.
    """
    if base_s <= 0.0 or attempt < 1:
        return 0.0
    delay = min(max_s, base_s * (2.0 ** (attempt - 1)))
    rng = random.Random(f"{technique}|{benchmark}|{seed}|{attempt}")
    return delay * (0.5 + rng.random())


class _DrainFlag:
    """Set by the signal handler; checked at every sweep barrier.

    ``external`` is an optional caller-owned stop condition -- anything
    with an ``is_set()`` method, typically a :class:`threading.Event` --
    that requests the same graceful drain as SIGTERM from outside the
    signal machinery.  The serving tier uses it for job cancellation and
    service-level drains, where the sweep runs off the main thread and no
    signal handler can be installed.
    """

    def __init__(self, external=None):
        self._event = threading.Event()
        self._external = external
        self.signum = 0

    def request(self, signum: int) -> None:
        self.signum = signum
        self._event.set()

    def is_set(self) -> bool:
        if self._event.is_set():
            return True
        return self._external is not None and self._external.is_set()

    @property
    def signal_name(self) -> str:
        if self.signum == 0:
            # Externally requested stop (cancellation / service drain).
            return "stop-request"
        try:
            return signal.Signals(self.signum).name
        except ValueError:  # pragma: no cover - synthetic signum
            return str(self.signum)


@contextlib.contextmanager
def _drain_on_signals(drain: "_DrainFlag"):
    """Turn SIGTERM/SIGINT into a drain request for the enclosed sweep.

    The first signal asks for a graceful drain (finish or abandon in-flight
    cells, flush the checkpoint, raise :class:`SweepInterrupted`); a second
    signal while draining escalates to an immediate KeyboardInterrupt.
    Handlers can only be installed from the main thread; elsewhere the
    sweep runs unsupervised exactly as before.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def on_signal(signum, frame):
        if drain.is_set():
            raise KeyboardInterrupt
        drain.request(signum)

    managed = (signal.SIGTERM, signal.SIGINT)
    previous = {}
    try:
        for sig in managed:
            previous[sig] = signal.signal(sig, on_signal)
    except (ValueError, OSError):  # pragma: no cover - exotic host
        for sig, old in previous.items():
            signal.signal(sig, old)
        yield
        return
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


# ----------------------------------------------------------------------
# Worker-process entry points
# ----------------------------------------------------------------------

#: Per-worker-process cache: the runner rebuilt from the last cell spec,
#: plus the heartbeat channel installed by the pool initializer.  Keeping
#: the runner across cells lets one worker reuse base runs (and their LRU
#: bound) exactly as the sequential path does within its own process.
_WORKER_STATE: dict = {}


def _worker_init(heartbeats, obs_spec) -> None:
    """Pool initializer: heartbeat channel plus observability hand-off.

    ``obs_spec`` is the parent's picklable :func:`repro.obs.worker_spec`:
    the worker opens its own trace shard and metrics registry from it, so
    spans and counters survive the process boundary without sharing any
    file handle or lock.
    """
    if heartbeats is not None:
        _WORKER_STATE["heartbeats"] = heartbeats
    obs.init_worker(obs_spec)


def _worker_beat(stage: str, cell_label: str) -> None:
    """Record this worker's liveness (best effort -- never fail the cell)."""
    heartbeats = _WORKER_STATE.get("heartbeats")
    if heartbeats is None:
        return
    try:
        heartbeats[os.getpid()] = (stage, cell_label, time.time())
    except Exception:  # manager gone mid-shutdown: liveness is moot
        pass


def _worker_run_cell(
    spec_blob: bytes,
    factory: ControllerFactory,
    benchmark: str,
    technique: str,
    seed: Optional[int],
    timeout_s: Optional[float],
    max_retries: int,
    backoff_base_s: float = 0.0,
    backoff_max_s: float = 30.0,
    ctx: Optional[dict] = None,
):
    """Execute one sweep cell inside a pool worker.

    ``spec_blob`` pickles ``(sweep_config, supply_transform,
    max_base_cache_entries, trace_store_path)``; the worker rebuilds a
    private
    :class:`BenchmarkRunner` from it (cached until the spec changes) so no
    simulator state is shared with the parent or with sibling workers.
    Timeouts run through the same :func:`_call_with_timeout` as the
    sequential path -- pool workers execute cells on their main thread, so
    the SIGALRM bound applies and a timed-out cell dies in place instead of
    leaking a live thread.

    The worker stamps a heartbeat at cell start, at every retry attempt,
    and at completion; the parent's supervisor treats a ``run``-stage
    stamp older than ``heartbeat_stale_s`` as a hung worker.

    Returns ``(metrics, failure, telemetry)``: the worker's metrics
    registry is reset at cell start and snapshotted at cell end, so
    ``telemetry`` is exactly this cell's counter deltas for the parent to
    :meth:`~repro.obs.metrics.MetricsRegistry.merge` -- additive and
    order-independent, so the merged totals do not depend on completion
    order.  (Totals can still differ from a sequential sweep's where a
    worker-local base cache recomputes a base run another worker already
    has; see docs/observability.md.)
    """
    cell_label = f"{benchmark}|{'-' if seed is None else seed}"
    _worker_beat("run", cell_label)
    registry = obs_metrics.active_registry()
    if registry is not None:
        registry.reset()
    try:
        if _WORKER_STATE.get("spec") != spec_blob:
            (
                config,
                supply_transform,
                max_base_cache_entries,
                trace_store_path,
            ) = pickle.loads(spec_blob)
            _WORKER_STATE["runner"] = BenchmarkRunner(
                config,
                supply_transform=supply_transform,
                max_base_cache_entries=max_base_cache_entries,
                trace_store=trace_store_path,
            )
            _WORKER_STATE["spec"] = spec_blob
        runner: "BenchmarkRunner" = _WORKER_STATE["runner"]
        resilience = ResilienceConfig(
            timeout_s=timeout_s,
            max_retries=max_retries,
            backoff_base_s=backoff_base_s,
            backoff_max_s=backoff_max_s,
        )
        # The dispatch context (the parent's sweep span) crosses the
        # process boundary as a plain dict; installing it marked remote
        # makes the cell span close the parent's pending flow arrow.
        with obs_context.use_context(
            obs_context.TraceContext.from_dict(ctx), remote=True
        ):
            metrics, failure = runner._run_cell(
                benchmark,
                technique,
                factory,
                resilience,
                base_seed=seed,
                on_attempt=lambda attempt: _worker_beat("run", cell_label),
            )
        telemetry = registry.snapshot() if registry is not None else None
        return metrics, failure, telemetry
    finally:
        profiler = obs_profile.active_profiler()
        if profiler is not None:
            profiler.flush_shard()
        _worker_beat("idle", cell_label)


class BenchmarkRunner:
    """Runs benchmarks against controller factories, caching base runs.

    Parameters
    ----------
    config:
        Cycle counts and hardware configuration shared by every run.
    resilience:
        Default :class:`ResilienceConfig` for :meth:`sweep`; when None the
        module-level :data:`DEFAULT_RESILIENCE` (set by the experiments
        registry from CLI flags) applies.
    supply_transform:
        Optional ``(supply, benchmark) -> supply`` hook wrapping the power
        supply of every run -- the fault-injection subsystem uses it to
        mount adversarial current attackers on otherwise unchanged sweeps.
    max_base_cache_entries:
        Bound on the cached base runs (LRU eviction), so long multi-seed
        sweeps cannot grow memory without limit.
    trace_store:
        Optional trace record/replay store -- a directory path or a
        :class:`repro.trace.TraceStore` -- for cells whose controller
        schedule is replayable (see :func:`repro.trace.replay.schedule_token`).
        When None, the store configured on the active
        :class:`ResilienceConfig` (``--trace-store``) applies.
    replay:
        ``False`` disables the record/replay layer for this runner no
        matter what the resilience config says (the ``--no-replay``
        escape hatch).

    A runner used with ``workers > 1`` owns a lazily created process pool;
    :meth:`close` (or use as a context manager) releases it.  The pool is
    kept alive between sweeps so worker-side base-run caches stay warm
    across the technique variants of one experiment.
    """

    def __init__(
        self,
        config: Optional[SweepConfig] = None,
        resilience: Optional[ResilienceConfig] = None,
        supply_transform: Optional[SupplyTransform] = None,
        max_base_cache_entries: int = 32,
        trace_store=None,
        replay: bool = True,
    ):
        if max_base_cache_entries < 1:
            raise ConfigurationError("max_base_cache_entries must be >= 1")
        self.config = config or SweepConfig()
        self.resilience = resilience
        self.supply_transform = supply_transform
        self.max_base_cache_entries = max_base_cache_entries
        self.replay = bool(replay)
        self._trace_store_path: Optional[str] = None
        self._trace_stores: Dict[str, object] = {}
        if trace_store is not None:
            root = getattr(trace_store, "root", None)
            if root is not None:
                self._trace_store_path = root
                self._trace_stores[root] = trace_store
            else:
                self._trace_store_path = str(trace_store)
        self._active_resilience: Optional[ResilienceConfig] = None
        self._base_cache: "OrderedDict[tuple, SimulationResult]" = OrderedDict()
        self._checkpoint_cells: Optional[Dict[str, dict]] = None
        self._sweep_count = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_workers = 0
        self._executor_heartbeat = False
        self._executor_obs_spec: Optional[dict] = None
        self._manager = None
        self._heartbeats = None
        self._closed = False
        self._checkpoint_write_warned = False

    # ------------------------------------------------------------------
    # Process-pool lifecycle
    # ------------------------------------------------------------------
    def _shutdown_executor(self) -> None:
        """Release the worker pool (rebuildable; the runner stays open)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
            self._executor_workers = 0
            self._executor_heartbeat = False
            self._executor_obs_spec = None

    def close(self) -> None:
        """Release the worker pool and heartbeat channel; idempotent.

        A closed runner refuses further sweeps (and ``with`` re-entry)
        with :class:`~repro.errors.HarnessError` -- a clear error beats a
        sweep silently hanging on a dead pool.
        """
        self._shutdown_executor()
        if self._manager is not None:
            with contextlib.suppress(Exception):
                self._manager.shutdown()
            self._manager = None
            self._heartbeats = None
        self._closed = True

    def __enter__(self) -> "BenchmarkRunner":
        if self._closed:
            raise HarnessError(
                "BenchmarkRunner is closed: its worker pool was released;"
                " create a new runner instead of re-entering this one"
            )
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _worker_pids(self) -> List[int]:
        """PIDs of the live pool workers (empty when no pool exists)."""
        executor = self._executor
        processes = getattr(executor, "_processes", None) if executor else None
        return list(processes or ())

    def _kill_workers(self) -> None:
        """SIGKILL every pool worker (drain deadline passed / worker hung)."""
        for pid in self._worker_pids():
            with contextlib.suppress(OSError):
                os.kill(pid, signal.SIGKILL)

    def _ensure_executor(
        self, workers: int, heartbeat: bool = False
    ) -> ProcessPoolExecutor:
        if self._closed:
            raise HarnessError(
                "BenchmarkRunner is closed: create a new runner to sweep again"
            )
        obs_spec = obs.worker_spec()
        if self._executor is not None and (
            self._executor_workers != workers
            or self._executor_heartbeat != heartbeat
            or self._executor_obs_spec != obs_spec
        ):
            self._shutdown_executor()
        if self._executor is None:
            heartbeats = None
            if heartbeat:
                if self._manager is None:
                    self._manager = multiprocessing.Manager()
                    self._heartbeats = self._manager.dict()
                self._heartbeats.clear()
                heartbeats = self._heartbeats
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_worker_init,
                initargs=(heartbeats, obs_spec),
            )
            self._executor_workers = workers
            self._executor_heartbeat = heartbeat
            self._executor_obs_spec = obs_spec
        return self._executor

    def _stale_worker_pids(self, stale_s: float) -> List[int]:
        """PIDs whose current cell has not progressed for ``stale_s``."""
        if self._heartbeats is None:
            return []
        now = time.time()
        alive = set(self._worker_pids())
        stale = []
        try:
            snapshot = dict(self._heartbeats)
        except Exception:  # manager already torn down
            return []
        for pid, entry in snapshot.items():
            if pid not in alive:
                continue
            stage, _cell_label, stamped = entry
            if stage == "run" and now - stamped > stale_s:
                stale.append(pid)
        return stale

    # ------------------------------------------------------------------
    # Building and running single cells
    # ------------------------------------------------------------------
    def _build_simulation(
        self,
        benchmark: str,
        controller: NoiseController,
        record: bool = False,
        seed: Optional[int] = None,
    ) -> Simulation:
        config = self.config
        processor = Processor.from_profile(
            SPEC2K[benchmark],
            n_instructions=config.instructions(),
            config=config.processor,
            supply_config=config.supply,
            seed=seed,
        )
        supply = PowerSupply(
            config.supply, initial_current=config.processor.min_current_amps
        )
        if self.supply_transform is not None:
            supply = self.supply_transform(supply, benchmark)
        return Simulation(
            processor,
            supply,
            controller,
            record=record,
            benchmark=benchmark,
            warmup_cycles=config.warmup_cycles,
        )

    # ------------------------------------------------------------------
    # Trace record/replay (repro.trace; ROADMAP item 2)
    # ------------------------------------------------------------------
    def _trace_layer(self, resilience: Optional[ResilienceConfig] = None):
        """The active :class:`~repro.trace.TraceStore`, or None.

        Resolution order: the runner-level ``replay=False`` switch wins,
        then a store passed to the constructor, then the resilience
        config (the explicit argument, the sweep in progress, the
        runner's own, or :data:`DEFAULT_RESILIENCE` -- same chain as
        :meth:`_resolve_resilience`).  Store objects are cached per path
        so hit/miss statistics accumulate across a whole sweep.
        """
        if not self.replay:
            return None
        path = self._trace_store_path
        if path is None:
            if resilience is None:
                resilience = self._active_resilience
            resilience = self._resolve_resilience(resilience)
            if not resilience.replay:
                return None
            path = resilience.trace_store_path
        if path is None:
            return None
        store = self._trace_stores.get(path)
        if store is None:
            # Function-level import: repro.trace.replay imports the
            # simulation module, which sits beside this one.
            from repro.trace import TraceStore

            store = TraceStore(path)
            self._trace_stores[path] = store
        return store

    def _trace_spec(
        self, resilience: Optional[ResilienceConfig] = None
    ) -> Optional[str]:
        """Store root to ship to pool/dist workers (None = replay off)."""
        store = self._trace_layer(resilience)
        return None if store is None else store.root

    def _trace_key(
        self,
        benchmark: str,
        controller: NoiseController,
        seed: Optional[int],
    ):
        """Front-end key of one cell, or None when it cannot replay.

        The key digests everything that shapes the per-cycle current
        trace: workload profile, effective trace seed, instruction
        budget, processor config, cycle counts, the controller's
        directive-schedule token and the supply-overlay token.  Supply
        parameters are deliberately absent -- currents are
        supply-independent for replayable (feedback-free) schedules, so
        one record serves every RLC/detector/response variant.
        """
        from repro.trace import TraceKey, overlay_token
        from repro.trace.replay import schedule_token

        token = schedule_token(controller)
        if token is None:
            return None
        overlay = overlay_token(self.supply_transform)
        if overlay is None:
            return None
        config = self.config
        profile = SPEC2K[benchmark]
        return TraceKey(
            benchmark=benchmark,
            workload=asdict(profile),
            seed=profile.seed if seed is None else seed,
            n_instructions=config.instructions(),
            processor=asdict(config.processor),
            n_cycles=config.n_cycles,
            warmup_cycles=config.warmup_cycles,
            schedule=token,
            overlay=overlay,
        )

    def _replay_supply(self, benchmark: str) -> PowerSupply:
        """A fresh supply (overlay applied), identical to a full run's."""
        supply = PowerSupply(
            self.config.supply,
            initial_current=self.config.processor.min_current_amps,
        )
        if self.supply_transform is not None:
            supply = self.supply_transform(supply, benchmark)
        return supply

    def _run_simulation(
        self,
        benchmark: str,
        controller: NoiseController,
        seed: Optional[int] = None,
        record: bool = False,
    ) -> SimulationResult:
        """Run one cell: replay a recorded trace when possible, else
        simulate fully (recording the trace on a store miss).

        Replay is guarded: any load-time doubt -- digest mismatch,
        truncation, corruption -- already degraded to ``load() -> None``
        inside the store (with an incident recorded), so this method
        falls back to the full simulation and, when the front end proves
        replayable (see :class:`~repro.trace.store.TraceCapture`),
        re-records it.
        """
        store = self._trace_layer()
        if store is not None:
            key = self._trace_key(benchmark, controller, seed)
        else:
            key = None
        if key is None:
            simulation = self._build_simulation(
                benchmark, controller, record=record, seed=seed
            )
            return simulation.run(self.config.n_cycles)

        from repro.trace import TraceCapture
        from repro.trace.replay import ReplaySimulation

        payload = store.load(key, label=benchmark)
        if payload is not None:
            replay = ReplaySimulation(
                payload,
                self._replay_supply(benchmark),
                controller,
                record=record,
                benchmark=benchmark,
            )
            return replay.run(self.config.n_cycles)
        simulation = self._build_simulation(
            benchmark, controller, record=record, seed=seed
        )
        simulation.capture = TraceCapture(key)
        result = simulation.run(self.config.n_cycles)
        if simulation.capture.completed:
            store.save(simulation.capture)
        return result

    def _base_key(self, benchmark: str, seed: Optional[int]) -> tuple:
        """Cache key of one base run.

        The sweep configuration (and the supply transform, compared by
        identity) is part of the key: ``config`` is a plain attribute, so a
        runner whose configuration is swapped between runs -- an ablation
        grid reusing one cache-shaped workflow -- must not be served a base
        run computed under the old configuration.
        """
        return (benchmark, seed, self.config, self.supply_transform)

    def run_base(
        self, benchmark: str, seed: Optional[int] = None
    ) -> SimulationResult:
        """Run (or fetch the cached) uncontrolled base configuration."""
        key = self._base_key(benchmark, seed)
        if key in self._base_cache:
            self._base_cache.move_to_end(key)
            return self._base_cache[key]
        result = self._run_simulation(benchmark, NullController(), seed=seed)
        self._base_cache[key] = result
        while len(self._base_cache) > self.max_base_cache_entries:
            self._base_cache.popitem(last=False)
        return result

    def clear_cache(self) -> None:
        """Drop all cached base runs (they are recomputed on demand)."""
        self._base_cache.clear()

    def prefetch_base_batch(
        self,
        cells: Sequence[Tuple[str, Optional[int]]],
        timeout_s: Optional[float] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Warm the base-run cache for several ``(benchmark, seed)`` cells.

        Hands all uncached lanes to :func:`repro.sim.simulation.run_batch`
        so the vectorized cycle kernel advances their supplies together in
        one lane-batched call.  Results are bit-identical to ``run_base``
        (the kernel is gated by the goldens), so this is purely a cache
        warmer: lanes that fail, time out, or are skipped are simply left
        uncached and fall back to the scalar ``run_base`` path -- where
        their error (if any) reproduces under the cell's normal
        retry/timeout policy.

        Returns the number of cells newly cached.  No-ops (returns 0) when
        a supply transform is installed (transformed supplies may override
        ``step``), when the kernel is disabled, or when fewer than two
        lanes actually need running.
        """
        from repro.core import kernel as core_kernel
        from repro.sim.simulation import run_batch

        if self.supply_transform is not None or not core_kernel.kernel_enabled():
            return 0
        store = self._trace_layer()
        pending = []
        seen = set()
        for benchmark, seed in cells:
            key = self._base_key(benchmark, seed)
            if key in self._base_cache or key in seen:
                continue
            seen.add(key)
            trace_key = None
            if store is not None:
                trace_key = self._trace_key(benchmark, NullController(), seed)
                if trace_key is not None and store.contains(trace_key):
                    # Already recorded: run_base replays it on demand
                    # (cheap), so don't spend pipeline time here.
                    continue
            pending.append((key, benchmark, seed, trace_key))
        if len(pending) < 2:
            return 0
        simulations = []
        for _key, benchmark, seed, trace_key in pending:
            simulation = self._build_simulation(
                benchmark, NullController(), seed=seed
            )
            if trace_key is not None:
                from repro.trace import TraceCapture

                simulation.capture = TraceCapture(trace_key)
            simulations.append(simulation)
        guard = None
        if timeout_s is not None:
            guard = lambda fn: _call_with_timeout(fn, timeout_s)
        outcomes = run_batch(
            simulations,
            self.config.n_cycles,
            guard=guard,
            should_stop=should_stop,
        )
        cached = 0
        for (key, _benchmark, _seed, _tk), simulation, outcome in zip(
            pending, simulations, outcomes
        ):
            if isinstance(outcome, SimulationResult):
                self._base_cache[key] = outcome
                self._base_cache.move_to_end(key)
                cached += 1
                capture = simulation.capture
                if store is not None and capture is not None \
                        and capture.completed:
                    store.save(capture)
        while len(self._base_cache) > self.max_base_cache_entries:
            self._base_cache.popitem(last=False)
        return cached

    def run_technique(
        self,
        benchmark: str,
        factory: ControllerFactory,
        seed: Optional[int] = None,
    ) -> SimulationResult:
        controller = factory(self.config.supply, self.config.processor)
        return self._run_simulation(benchmark, controller, seed=seed)

    def compare(
        self,
        benchmark: str,
        factory: ControllerFactory,
        seed: Optional[int] = None,
    ) -> RelativeMetrics:
        base = self.run_base(benchmark, seed=seed)
        result = self.run_technique(benchmark, factory, seed=seed)
        return result.relative_to(base)

    def compare_seeds(
        self,
        benchmark: str,
        factory: ControllerFactory,
        n_seeds: int = 3,
    ) -> SeedStatistics:
        """Repeat the comparison over ``n_seeds`` regenerated traces."""
        if n_seeds < 1:
            raise ValueError("n_seeds must be at least 1")
        profile_seed = SPEC2K[benchmark].seed
        seeds: List[Optional[int]] = [None]
        seeds += [profile_seed + 1000 * k for k in range(1, n_seeds)]
        runs = tuple(
            self.compare(benchmark, factory, seed=seed) for seed in seeds
        )
        slowdowns = [run.slowdown for run in runs]
        energy_delays = [run.energy_delay for run in runs]

        def mean(values):
            return sum(values) / len(values)

        def std(values):
            centre = mean(values)
            return (sum((v - centre) ** 2 for v in values) / len(values)) ** 0.5

        return SeedStatistics(
            benchmark=benchmark,
            technique=runs[0].technique,
            n_seeds=n_seeds,
            mean_slowdown=mean(slowdowns),
            std_slowdown=std(slowdowns),
            mean_energy_delay=mean(energy_delays),
            std_energy_delay=std(energy_delays),
            max_violation_fraction=max(run.violation_fraction for run in runs),
            runs=runs,
        )

    # ------------------------------------------------------------------
    # Resilient sweeping
    # ------------------------------------------------------------------
    def _resolve_resilience(
        self, override: Optional[ResilienceConfig]
    ) -> ResilienceConfig:
        if override is not None:
            return override
        if self.resilience is not None:
            return self.resilience
        if DEFAULT_RESILIENCE is not None:
            return DEFAULT_RESILIENCE
        return ResilienceConfig()

    def _load_cells(self, resilience: ResilienceConfig) -> Dict[str, dict]:
        """The in-memory mirror of the checkpoint's completed cells.

        A corrupt or truncated checkpoint is salvaged (digest-valid cells
        kept, the original quarantined) rather than failing the resume;
        only a checkpoint from an incompatible sweep configuration is
        refused outright.
        """
        if self._checkpoint_cells is not None:
            return self._checkpoint_cells
        cells: Dict[str, dict] = {}
        path = resilience.checkpoint_path
        if resilience.resume and path and os.path.exists(path):
            data = load_checkpoint(path, salvage=True)
            recovered_n = data.get("n_cycles")
            recovered_warmup = data.get("warmup_cycles")
            mismatched = (
                recovered_n is not None
                and recovered_n != self.config.n_cycles
            ) or (
                recovered_warmup is not None
                and recovered_warmup != self.config.warmup_cycles
            )
            if mismatched:
                raise ConfigurationError(
                    f"checkpoint {path!r} was written for"
                    f" n_cycles={recovered_n}"
                    f" warmup_cycles={recovered_warmup}, which does"
                    f" not match this sweep"
                    f" (n_cycles={self.config.n_cycles},"
                    f" warmup_cycles={self.config.warmup_cycles})"
                )
            cells = dict(data.get("cells", {}))
            if data.get("quarantined"):
                # Salvage moved the damaged original aside; re-persist
                # the recovered subset immediately so the checkpoint
                # path stays valid even if no cell re-runs (e.g. every
                # record survived the damage).
                self._checkpoint_cells = cells
                self._save_cells(resilience)
        self._checkpoint_cells = cells
        return cells

    def _save_cells(self, resilience: ResilienceConfig) -> None:
        """Flush the completed cells to the checkpoint, durably.

        A failing write (disk full, I/O error) is reported once as a
        RuntimeWarning and otherwise tolerated: results are still held in
        memory and the next successful flush persists them, so a sick disk
        degrades durability without aborting the sweep.
        """
        if resilience.checkpoint_path is None:
            return
        payload = _checkpoint_payload(
            self.config.n_cycles,
            self.config.warmup_cycles,
            self._checkpoint_cells or {},
        )
        tracer = obs_trace.active_tracer()
        try:
            with _maybe_span(
                tracer, "checkpoint_io",
                args={"cells": len(self._checkpoint_cells or {})},
            ):
                _write_checkpoint(resilience.checkpoint_path, payload)
        except OSError as error:
            if not self._checkpoint_write_warned:
                self._checkpoint_write_warned = True
                warn_once(
                    f"checkpoint write to"
                    f" {resilience.checkpoint_path!r} failed"
                    f" ({type(error).__name__}: {error}); the sweep"
                    f" continues, but completed cells stay unflushed until"
                    f" a write succeeds",
                    stacklevel=3,
                )

    def _run_cell(
        self,
        benchmark: str,
        technique: str,
        factory: ControllerFactory,
        resilience: ResilienceConfig,
        base_seed: Optional[int] = None,
        on_attempt: Optional[Callable[[int], None]] = None,
    ):
        """One (benchmark, technique, seed) cell with timeout and retry.

        Returns ``(metrics, None)`` on success or ``(None, FailureReport)``
        once every attempt -- the original run plus ``max_retries``
        deterministically re-seeded ones -- has failed.  Retry attempts
        wait out a deterministic exponential backoff (seeded jitter, see
        :func:`_backoff_delay_s`) when ``backoff_base_s`` is set, and
        ``on_attempt`` fires at the start of each attempt (the parallel
        backend's heartbeat).  Interrupts (KeyboardInterrupt / SystemExit)
        always propagate so a killed sweep stops at a checkpointed boundary
        instead of "retrying" the kill.
        """
        last_error: Optional[BaseException] = None
        seed = base_seed
        attempts = resilience.max_retries + 1
        tracer = obs_trace.active_tracer()
        registry = obs_metrics.active_registry()
        started = time.perf_counter()
        with contextlib.ExitStack() as stack:
            span_args: dict = {}
            if tracer is not None:
                # The cell context is derived, not random, so the
                # dispatching side (pool submit / dist scheduler) computes
                # the same span id for its flow arrow, and fixed-seed runs
                # produce identical linkage on every backend.
                cell_ctx = None
                remote = obs_context.context_is_remote()
                parent_ctx = obs_context.current_context()
                if parent_ctx is not None:
                    cell_ctx = parent_ctx.child(
                        f"cell|{benchmark}|{technique}|{base_seed}"
                    )
                    stack.enter_context(obs_context.use_context(cell_ctx))
                span_args = stack.enter_context(tracer.span(
                    f"cell {benchmark}",
                    cat=obs_trace.CAT_CELL,
                    args={
                        "benchmark": benchmark,
                        "technique": technique,
                        "seed": base_seed,
                    },
                    ctx=cell_ctx,
                ))
                if cell_ctx is not None and remote:
                    # Close the dispatcher's flow arrow from inside the
                    # cell slice so Perfetto binds it to this span.
                    tracer.flow_end(cell_ctx.span_id)
            profiler = obs_profile.active_profiler()
            if profiler is not None:
                stack.enter_context(profiler.attribute(
                    f"{benchmark}|{technique}|"
                    f"{'-' if base_seed is None else base_seed}"
                ))
            for attempt in range(attempts):
                if attempt:
                    origin = (
                        base_seed
                        if base_seed is not None
                        else SPEC2K[benchmark].seed
                    )
                    seed = origin + _RESEED_STRIDE * attempt
                    delay = _backoff_delay_s(
                        technique, benchmark, base_seed, attempt,
                        resilience.backoff_base_s, resilience.backoff_max_s,
                    )
                    if registry is not None:
                        registry.counter(
                            "runner_retries_total",
                            help="sweep-cell retry attempts (beyond the"
                                 " first attempt)",
                        ).inc()
                    if tracer is not None:
                        tracer.instant("retry", args={
                            "benchmark": benchmark,
                            "technique": technique,
                            "seed": seed,
                            "attempt": attempt,
                            "error": f"{type(last_error).__name__}:"
                                     f" {last_error}",
                        })
                    if delay > 0.0:
                        time.sleep(delay)
                if on_attempt is not None:
                    on_attempt(attempt)
                try:
                    metrics = _call_with_timeout(
                        lambda: self.compare(benchmark, factory, seed=seed),
                        resilience.timeout_s,
                    )
                    span_args["attempts"] = attempt + 1
                    span_args["outcome"] = "completed"
                    self._observe_cell_latency(registry, started)
                    return metrics, None
                except Exception as error:
                    last_error = error
            span_args["attempts"] = attempts
            span_args["outcome"] = f"failed: {type(last_error).__name__}"
            self._observe_cell_latency(registry, started)
            return None, FailureReport(
                benchmark=benchmark,
                technique=technique,
                seed=seed,
                attempts=attempts,
                error_type=type(last_error).__name__,
                message=str(last_error),
            )

    @staticmethod
    def _observe_cell_latency(registry, started: float) -> None:
        if registry is not None:
            registry.histogram(
                "runner_cell_seconds",
                help="wall-clock seconds per sweep cell, retries included",
            ).observe(time.perf_counter() - started)

    def sweep(
        self,
        factory: ControllerFactory,
        benchmarks: Optional[Sequence[str]] = None,
        progress: Optional[Callable[[str, RelativeMetrics], None]] = None,
        resilience: Optional[ResilienceConfig] = None,
        seeds: Optional[Sequence[Optional[int]]] = None,
        stop=None,
        on_failure: Optional[Callable] = None,
    ) -> TechniqueSummary:
        """Run one technique over a (benchmark, seed) grid and aggregate.

        With a :class:`ResilienceConfig` (passed here, on the runner, or via
        :data:`DEFAULT_RESILIENCE`), each completed cell is appended to the
        JSON checkpoint before the next starts, failed cells are retried on
        re-seeded traces and finally reported as :class:`FailureReport`
        entries, and ``resume=True`` skips cells already in the checkpoint
        -- producing a summary identical to an uninterrupted sweep.

        ``seeds`` widens the grid: every benchmark runs once per seed
        (default ``(None,)``, today's single-run behaviour), with each
        (benchmark, seed) pair checkpointed as its own cell.

        ``workers > 1`` executes pending cells on a process pool.  The
        summary (rows, failure order, aggregates) is bit-identical to a
        sequential sweep -- rows are assembled in grid order regardless of
        completion order -- and the final checkpoint file is byte-identical
        (cells are keyed, and the JSON is written with sorted keys).  Only
        the ``progress`` callback order differs: sequential sweeps report
        cells in grid order, parallel sweeps in completion order (cached
        cells first).

        The returned summary carries a ``timings`` attribute with the
        per-phase wall-clock breakdown and an ``incidents`` attribute with
        the worker-supervision events (see :class:`TechniqueSummary`).

        Sweeps drain gracefully: SIGTERM or SIGINT during a sweep stops
        dispatching new cells, flushes a final checkpoint (plus a
        ``<checkpoint>.shutdown.json`` summary), and raises
        :class:`~repro.errors.SweepInterrupted` -- the CLI exits nonzero
        but the run resumes with ``--resume``.

        ``stop`` is an optional external stop condition (anything with an
        ``is_set()`` method, typically a :class:`threading.Event`): when it
        becomes set the sweep drains exactly as it would on SIGTERM, at the
        next cell barrier, raising :class:`~repro.errors.SweepInterrupted`.
        The serving tier (:mod:`repro.serve`) uses it for job cancellation
        and service drains, where sweeps run off the main thread and no
        signal handler can be installed.  ``on_failure`` is the failure
        counterpart of ``progress``: called as ``on_failure(cell, report)``
        whenever a cell is parked as a :class:`FailureReport`, on every
        backend.
        """
        if self._closed:
            raise HarnessError(
                "BenchmarkRunner is closed: its worker pool was released;"
                " create a new runner to sweep again"
            )
        t_total = time.perf_counter()
        tracer = obs_trace.active_tracer()
        registry = obs_metrics.active_registry()
        with contextlib.ExitStack() as sweep_stack:
            sweep_args = sweep_stack.enter_context(_maybe_span(tracer, "sweep"))
            with _maybe_span(tracer, "setup"):
                resilience = self._resolve_resilience(resilience)
                # Cells executed through compare/run_base must see this
                # sweep's resilience (its --trace-store in particular).
                self._active_resilience = resilience
                sweep_stack.callback(
                    setattr, self, "_active_resilience", None
                )
                self._checkpoint_write_warned = False
                names = (
                    list(benchmarks) if benchmarks is not None
                    else sorted(SPEC2K)
                )
                seed_list: List[Optional[int]] = (
                    list(seeds) if seeds is not None else [None]
                )
                if not seed_list:
                    raise ConfigurationError(
                        "seeds must be non-empty when given"
                    )
                # One probe controller names the technique (cells are keyed
                # by it).
                technique = factory(
                    self.config.supply, self.config.processor
                ).name
                cells = self._load_cells(resilience)
                ordinal = self._sweep_count
                self._sweep_count += 1
                grid = [(name, seed) for name in names for seed in seed_list]

                results: Dict[Tuple[str, Optional[int]], RelativeMetrics] = {}
                failure_map: Dict[
                    Tuple[str, Optional[int]], FailureReport
                ] = {}
                pending: List[Tuple[str, Optional[int]]] = []
                for name, seed in grid:
                    key = _cell_key(ordinal, name, technique, seed)
                    if key in cells:
                        results[(name, seed)] = _metrics_from_dict(cells[key])
                    else:
                        pending.append((name, seed))
                backend = select_backend(
                    self, resilience, factory, len(pending)
                )
                workers = backend.workers
            sweep_ctx = None
            if tracer is not None:
                # Deterministic sweep identity: under a serve job the
                # context chains off the job/request span; standalone
                # sweeps root a fresh trace.  Either way fixed-seed runs
                # get byte-identical ids.
                identity = f"sweep|{technique}|{ordinal}"
                parent_ctx = obs_context.current_context()
                sweep_ctx = (
                    parent_ctx.child(identity)
                    if parent_ctx is not None
                    else obs_context.TraceContext.root(
                        f"{identity}|{len(grid)}"
                    )
                )
                sweep_args.update(sweep_ctx.span_args())
                sweep_stack.enter_context(obs_context.use_context(sweep_ctx))
            sweep_args.update({
                "technique": technique,
                "backend": backend.name,
                "workers": workers,
                "cells_total": len(grid),
                "cells_cached": len(grid) - len(pending),
            })
            timings = {
                "workers": float(workers),
                "cells_total": float(len(grid)),
                "cells_cached": float(len(grid) - len(pending)),
                "setup": time.perf_counter() - t_total,
                "checkpoint_io": 0.0,
            }

            incidents: List[FailureReport] = []
            drain = _DrainFlag(external=stop)
            trace_store = self._trace_layer(resilience)
            trace_stats_before = (
                dict(trace_store.stats) if trace_store is not None else None
            )
            t_execute = time.perf_counter()
            with _maybe_span(tracer, "execute"), _drain_on_signals(drain):
                job = SweepJob(
                    runner=self,
                    grid=grid,
                    pending=pending,
                    ordinal=ordinal,
                    technique=technique,
                    factory=factory,
                    resilience=resilience,
                    progress=progress,
                    cells=cells,
                    results=results,
                    failure_map=failure_map,
                    timings=timings,
                    drain=drain,
                    incidents=incidents,
                    on_failure=on_failure,
                )
                backend.execute(job)
            timings["execute"] = time.perf_counter() - t_execute
            if trace_store is not None:
                # Hit/miss deltas live in ``timings`` (diagnostics outside
                # the dataclass fields), so a warm-store sweep still
                # fingerprints identical to a cold one.  Guard failures
                # become incidents: the result is still correct (full
                # simulation ran), but the operator should know the store
                # is rotting.  Pool/dist workers keep their own stores;
                # their counts arrive via the merged obs telemetry.
                for stat, value in trace_store.stats.items():
                    timings[f"trace_{stat}"] = float(
                        value - trace_stats_before[stat]
                    )
                for event in trace_store.drain_incidents():
                    incidents.append(FailureReport(
                        benchmark=event.get("benchmark", "trace-store"),
                        technique=technique,
                        seed=None,
                        attempts=0,
                        error_type=event.get(
                            "error_type", "TraceStoreCorrupt"
                        ),
                        message=(
                            f"{event.get('kind', 'entry')}"
                            f" {event.get('path', '?')}:"
                            f" {event.get('reason', 'rejected')};"
                            f" fell back to full simulation"
                        ),
                    ))

            t_aggregate = time.perf_counter()
            with _maybe_span(tracer, "aggregate"):
                rows: List[RelativeMetrics] = []
                failures: List[FailureReport] = []
                violation_cycles = 0
                for cell in grid:
                    metrics = results.get(cell)
                    if metrics is not None:
                        rows.append(metrics)
                        violation_cycles += round(
                            metrics.violation_fraction * self.config.n_cycles
                        )
                    elif cell in failure_map:
                        failures.append(failure_map[cell])
                if not rows:
                    detail = "; ".join(
                        f"{f.benchmark}: {f.error_type}: {f.message}"
                        for f in failures
                    )
                    raise FaultError(
                        f"every cell of the {technique!r} sweep failed"
                        f" ({detail})"
                    )
                summary = summarize(
                    rows, violation_cycles, failures=tuple(failures)
                )
            timings["aggregate"] = time.perf_counter() - t_aggregate
            timings["total"] = time.perf_counter() - t_total
            # Diagnostic attributes, deliberately outside the dataclass
            # fields (see TechniqueSummary): summaries stay comparable
            # across backends and across supervision incidents.
            object.__setattr__(summary, "timings", timings)
            object.__setattr__(summary, "incidents", tuple(incidents))
            if registry is not None:
                self._record_sweep_metrics(
                    registry, technique, workers, grid, pending, results,
                    failure_map, incidents,
                )
            self._write_summary_sidecar(resilience, summary)
            return summary

    @staticmethod
    def _record_sweep_metrics(
        registry,
        technique: str,
        workers: int,
        grid: Sequence[Tuple[str, Optional[int]]],
        pending: Sequence[Tuple[str, Optional[int]]],
        results: Dict[Tuple[str, Optional[int]], RelativeMetrics],
        failure_map: Dict[Tuple[str, Optional[int]], FailureReport],
        incidents: Sequence[FailureReport],
    ) -> None:
        """Sweep-level counters, recorded once at aggregation time."""
        labels = {"technique": technique}
        registry.counter(
            "runner_sweeps_total", help="completed sweeps"
        ).inc(labels=labels)
        registry.gauge(
            "runner_workers", help="process-pool size of the last sweep"
        ).set(workers)
        cached = len(grid) - len(pending)
        by_status = registry.counter(
            "runner_cells_total", help="sweep cells by final status"
        )
        by_status.inc(cached, labels={"status": "cached"})
        by_status.inc(len(results) - cached, labels={"status": "completed"})
        parked = sum(1 for f in failure_map.values() if f.skipped)
        by_status.inc(
            len(failure_map) - parked, labels={"status": "failed"}
        )
        by_status.inc(parked, labels={"status": "parked"})
        registry.counter(
            "runner_incidents_total",
            help="worker-supervision incidents (lost or hung workers)",
        ).inc(len(incidents))

    def _write_summary_sidecar(
        self,
        resilience: ResilienceConfig,
        summary: "TechniqueSummary",
    ) -> None:
        """Persist the summary (timings and incidents included) next to the
        checkpoint as ``<checkpoint>.summary.json``.

        Best-effort durability, like the checkpoint itself: an unwritable
        sidecar must not fail a sweep that already has its results.
        """
        if resilience.checkpoint_path is None:
            return
        # Function-level import: repro.sim.export imports this module.
        from repro.sim.export import summary_to_dict

        with contextlib.suppress(OSError):
            _atomic_write_json(
                f"{resilience.checkpoint_path}.summary.json",
                summary_to_dict(summary),
            )

    def _shutdown_summary(
        self,
        resilience: ResilienceConfig,
        technique: str,
        drain: "_DrainFlag",
        completed: int,
        pending_cells: Sequence[Tuple[str, Optional[int]]],
    ) -> None:
        """Write ``<checkpoint>.shutdown.json`` describing the drain."""
        if resilience.checkpoint_path is None:
            return
        payload = {
            "signal": drain.signal_name,
            "technique": technique,
            "completed_cells": completed,
            "pending_cells": [
                [name, seed] for name, seed in pending_cells
            ],
            "resumable": resilience.checkpoint_path is not None,
            "checkpoint": resilience.checkpoint_path,
        }
        with contextlib.suppress(OSError):
            _atomic_write_json(
                f"{resilience.checkpoint_path}.shutdown.json", payload
            )

    def _drain_now(
        self,
        resilience: ResilienceConfig,
        technique: str,
        drain: "_DrainFlag",
        completed: int,
        pending_cells: Sequence[Tuple[str, Optional[int]]],
    ) -> "SweepInterrupted":
        """Final checkpoint flush + shutdown summary; returns the exception."""
        tracer = obs_trace.active_tracer()
        if tracer is not None:
            tracer.instant(
                "drain",
                cat=obs_trace.CAT_SUPERVISION,
                args={
                    "signal": drain.signal_name,
                    "completed": completed,
                    "pending": len(pending_cells),
                },
            )
        self._save_cells(resilience)
        self._shutdown_summary(
            resilience, technique, drain, completed, pending_cells
        )
        return SweepInterrupted(
            f"sweep drained on {drain.signal_name}: {completed} cell(s)"
            f" completed and checkpointed, {len(pending_cells)} pending;"
            f" rerun with --resume to finish",
            signum=drain.signum,
            completed=completed,
            pending=len(pending_cells),
        )



def summarize(
    rows: Iterable[RelativeMetrics],
    total_violation_cycles: int = 0,
    failures: Tuple[FailureReport, ...] = (),
) -> TechniqueSummary:
    """Aggregate per-benchmark relative metrics into a table row."""
    rows = tuple(rows)
    if not rows:
        raise ValueError("summarize needs at least one row")
    worst = max(rows, key=lambda row: row.slowdown)
    return TechniqueSummary(
        technique=rows[0].technique,
        avg_slowdown=sum(row.slowdown for row in rows) / len(rows),
        worst_slowdown=worst.slowdown,
        worst_benchmark=worst.benchmark,
        apps_over_15_percent=sum(1 for row in rows if row.slowdown > 1.15),
        avg_energy_delay=sum(row.energy_delay for row in rows) / len(rows),
        avg_first_level_fraction=(
            sum(row.first_level_fraction for row in rows) / len(rows)
        ),
        avg_second_level_fraction=(
            sum(row.second_level_fraction for row in rows) / len(rows)
        ),
        total_violation_cycles=total_violation_cycles,
        per_benchmark=rows,
        failures=failures,
    )
