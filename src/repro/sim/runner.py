"""Batch running: benchmark x technique sweeps with Table 3/4/5 aggregation.

A *controller factory* is any callable ``(supply_config, processor_config)
-> NoiseController``; the runner builds a fresh processor and supply per
run (so runs are independent and deterministic), executes the base
configuration once per benchmark, and reports each technique's metrics
relative to it.

Sweeps are *resilient*: a :class:`ResilienceConfig` adds per-cell
wall-clock timeouts, bounded retry with deterministic re-seeding, and a
JSON checkpoint written after every completed (benchmark, technique, seed)
cell, so a killed sweep resumes exactly where it stopped (see
``docs/robustness.md``).  Cells that exhaust their retry budget become
structured :class:`FailureReport` entries on the :class:`TechniqueSummary`
instead of aborting the whole sweep.

Sweeps are also *parallel*: ``ResilienceConfig(workers=N)`` dispatches the
(benchmark, seed) cell grid to a ``ProcessPoolExecutor``.  Each worker
process rebuilds its own :class:`BenchmarkRunner` from a picklable spec --
no simulator state ever crosses a process boundary -- and keeps a warm
base-run cache across the cells it executes.  Cells are deterministic and
independent (retry attempt ``k`` always reseeds to ``seed + 104729 * k``),
so the parallel backend produces aggregates, checkpoints and failure
reports bit-identical to the sequential one: checkpoints are written from
the parent in completion order but keyed by the same cell keys, and rows
are always aggregated in grid order.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, fields
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import (
    PowerSupplyConfig,
    ProcessorConfig,
    TABLE1_PROCESSOR,
    TABLE1_SUPPLY,
)
from repro.core.controller import NoiseController, NullController
from repro.errors import ConfigurationError, FaultError
from repro.power.supply import PowerSupply
from repro.sim.metrics import RelativeMetrics, SimulationResult
from repro.sim.simulation import Simulation
from repro.uarch.processor import Processor
from repro.uarch.workloads import SPEC2K

__all__ = [
    "SweepConfig",
    "ResilienceConfig",
    "FailureReport",
    "TechniqueSummary",
    "SeedStatistics",
    "BenchmarkRunner",
    "summarize",
    "load_checkpoint",
    "DEFAULT_RESILIENCE",
]

ControllerFactory = Callable[[PowerSupplyConfig, ProcessorConfig], NoiseController]
SupplyTransform = Callable[[PowerSupply, str], PowerSupply]

#: Process-wide fallback resilience, installed temporarily by
#: :func:`repro.experiments.registry.run_experiment` so experiments that
#: build their own runners deep inside still honour ``--resume`` /
#: ``--timeout-s`` / ``--max-retries`` / ``--workers`` without threading a
#: parameter through every experiment signature.
DEFAULT_RESILIENCE: Optional["ResilienceConfig"] = None

#: Seed stride between retry attempts: a failed cell re-runs on a freshly
#: regenerated trace whose seed is a deterministic function of (profile
#: seed, attempt), so retries are reproducible run to run.
_RESEED_STRIDE = 104_729

#: Version tag of the checkpoint JSON schema.
_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class SweepConfig:
    """How long and on what hardware to run each benchmark."""

    n_cycles: int = 60_000
    warmup_cycles: int = 2_000
    supply: PowerSupplyConfig = TABLE1_SUPPLY
    processor: ProcessorConfig = TABLE1_PROCESSOR
    trace_instructions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_cycles <= 0:
            raise ConfigurationError("n_cycles must be positive")
        if self.warmup_cycles < 0:
            raise ConfigurationError("warmup_cycles must be non-negative")
        if self.trace_instructions is not None and self.trace_instructions <= 0:
            raise ConfigurationError(
                "trace_instructions must be positive when set"
            )

    def instructions(self) -> int:
        if self.trace_instructions is not None:
            return self.trace_instructions
        # Enough instructions that no workload wraps more than a few times.
        return max(50_000, int((self.n_cycles + self.warmup_cycles) * 4.5))


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault tolerance and execution backend for a sweep."""

    #: wall-clock budget per (benchmark, technique, seed) cell; None = none
    timeout_s: Optional[float] = None
    #: extra attempts after the first, each on a deterministically re-seeded
    #: trace (seed = profile seed + 104729 * attempt)
    max_retries: int = 0
    #: JSON file updated after every completed cell; None disables
    checkpoint_path: Optional[str] = None
    #: load the checkpoint and skip already-completed cells
    resume: bool = False
    #: worker processes executing sweep cells; 1 = in-process (sequential)
    workers: int = 1

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive when set")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.resume and self.checkpoint_path is None:
            raise ConfigurationError("resume requires a checkpoint_path")
        if self.workers < 1:
            raise ConfigurationError("workers must be at least 1")


@dataclass(frozen=True)
class FailureReport:
    """One sweep cell that exhausted its retry budget."""

    benchmark: str
    technique: str
    seed: Optional[int]
    attempts: int
    error_type: str
    message: str


@dataclass(frozen=True)
class SeedStatistics:
    """Mean / spread of one technique on one benchmark across trace seeds.

    Seeds regenerate the synthetic trace from the same statistical profile,
    so the spread measures sensitivity to the particular random instruction
    stream rather than to the workload's character.
    """

    benchmark: str
    technique: str
    n_seeds: int
    mean_slowdown: float
    std_slowdown: float
    mean_energy_delay: float
    std_energy_delay: float
    max_violation_fraction: float
    runs: Tuple[RelativeMetrics, ...]


@dataclass(frozen=True)
class TechniqueSummary:
    """Aggregate of one technique over many benchmarks (a table row).

    Summaries returned by :meth:`BenchmarkRunner.sweep` additionally carry
    a ``timings`` attribute -- a per-phase wall-clock breakdown (setup /
    execute / checkpoint_io / aggregate / total seconds plus the worker
    count and cell counts).  It is a diagnostic attached outside the
    dataclass fields, so equality and serialisation of summaries stay
    timing-independent (a resumed sweep still compares byte-identical to an
    uninterrupted one).
    """

    technique: str
    avg_slowdown: float
    worst_slowdown: float
    worst_benchmark: str
    apps_over_15_percent: int
    avg_energy_delay: float
    avg_first_level_fraction: float
    avg_second_level_fraction: float
    total_violation_cycles: int
    per_benchmark: Tuple[RelativeMetrics, ...]
    failures: Tuple[FailureReport, ...] = ()


# ----------------------------------------------------------------------
# Checkpoint I/O
# ----------------------------------------------------------------------

def _cell_key(
    ordinal: int, benchmark: str, technique: str, seed: Optional[int]
) -> str:
    """Checkpoint key of one cell.

    ``ordinal`` is the index of the sweep within its runner: experiments
    routinely sweep several *variants* of one technique (same controller
    name, different knobs) through one runner, and the ordinal keeps their
    cells distinct.  Re-running the same experiment replays the same sweep
    order, so ordinals are stable across a kill/resume boundary.
    """
    return f"s{ordinal}|{benchmark}|{technique}|{'-' if seed is None else seed}"


def load_checkpoint(path: str) -> dict:
    """Read a sweep checkpoint; returns its raw dictionary form."""
    with open(path) as handle:
        data = json.load(handle)
    if data.get("version") != _CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"checkpoint {path!r} has version {data.get('version')!r},"
            f" expected {_CHECKPOINT_VERSION}"
        )
    return data


def _write_checkpoint(path: str, payload: dict) -> None:
    """Atomically replace the checkpoint (write-temp-then-rename)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w") as handle:
        json.dump(payload, handle, indent=0, sort_keys=True)
    os.replace(tmp_path, path)


def _metrics_from_dict(data: dict) -> RelativeMetrics:
    names = {f.name for f in fields(RelativeMetrics)}
    return RelativeMetrics(**{k: v for k, v in data.items() if k in names})


# ----------------------------------------------------------------------
# Per-cell timeouts
# ----------------------------------------------------------------------

def _call_with_alarm(fn: Callable[[], object], timeout_s: float):
    """Interrupt ``fn`` with SIGALRM after ``timeout_s`` (main thread only).

    The interval timer preempts the running cell in place -- no helper
    thread is created, so a timed-out cell leaves nothing behind.  The
    previous handler and timer are restored on exit.
    """

    def on_alarm(signum, frame):
        raise FaultError(
            f"run exceeded the wall-clock timeout of {timeout_s:g} s"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _call_with_thread(fn: Callable[[], object], timeout_s: float):
    """Legacy timeout for contexts where SIGALRM is unavailable.

    The work runs on a daemon thread; on expiry the thread is abandoned
    (Python offers no preemptive kill off the main thread) and a
    :class:`FaultError` raised.
    """
    outcome: dict = {}

    def target():
        try:
            outcome["value"] = fn()
        except BaseException as error:  # propagate to the caller's thread
            outcome["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise FaultError(
            f"run exceeded the wall-clock timeout of {timeout_s:g} s"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


def _call_with_timeout(fn: Callable[[], object], timeout_s: Optional[float]):
    """Run ``fn`` bounded by ``timeout_s`` of wall-clock time.

    On the main thread of a process (the sequential sweep loop, and every
    pool worker) the bound is enforced with an interval timer, which
    preempts the cell without spawning -- or leaking -- any thread.  Off
    the main thread, or where SIGALRM does not exist, the old abandon-a-
    daemon-thread fallback applies.  Without a timeout, runs inline.
    """
    if timeout_s is None:
        return fn()
    if (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):
        return _call_with_alarm(fn, timeout_s)
    return _call_with_thread(fn, timeout_s)


# ----------------------------------------------------------------------
# Worker-process entry points
# ----------------------------------------------------------------------

#: Per-worker-process cache: the runner rebuilt from the last cell spec.
#: Keeping it across cells lets one worker reuse base runs (and their LRU
#: bound) exactly as the sequential path does within its own process.
_WORKER_STATE: dict = {}


def _worker_run_cell(
    spec_blob: bytes,
    factory: ControllerFactory,
    benchmark: str,
    technique: str,
    seed: Optional[int],
    timeout_s: Optional[float],
    max_retries: int,
):
    """Execute one sweep cell inside a pool worker.

    ``spec_blob`` pickles ``(sweep_config, supply_transform,
    max_base_cache_entries)``; the worker rebuilds a private
    :class:`BenchmarkRunner` from it (cached until the spec changes) so no
    simulator state is shared with the parent or with sibling workers.
    Timeouts run through the same :func:`_call_with_timeout` as the
    sequential path -- pool workers execute cells on their main thread, so
    the SIGALRM bound applies and a timed-out cell dies in place instead of
    leaking a live thread.
    """
    if _WORKER_STATE.get("spec") != spec_blob:
        config, supply_transform, max_base_cache_entries = pickle.loads(
            spec_blob
        )
        _WORKER_STATE["runner"] = BenchmarkRunner(
            config,
            supply_transform=supply_transform,
            max_base_cache_entries=max_base_cache_entries,
        )
        _WORKER_STATE["spec"] = spec_blob
    runner: "BenchmarkRunner" = _WORKER_STATE["runner"]
    resilience = ResilienceConfig(timeout_s=timeout_s, max_retries=max_retries)
    return runner._run_cell(
        benchmark, technique, factory, resilience, base_seed=seed
    )


class BenchmarkRunner:
    """Runs benchmarks against controller factories, caching base runs.

    Parameters
    ----------
    config:
        Cycle counts and hardware configuration shared by every run.
    resilience:
        Default :class:`ResilienceConfig` for :meth:`sweep`; when None the
        module-level :data:`DEFAULT_RESILIENCE` (set by the experiments
        registry from CLI flags) applies.
    supply_transform:
        Optional ``(supply, benchmark) -> supply`` hook wrapping the power
        supply of every run -- the fault-injection subsystem uses it to
        mount adversarial current attackers on otherwise unchanged sweeps.
    max_base_cache_entries:
        Bound on the cached base runs (LRU eviction), so long multi-seed
        sweeps cannot grow memory without limit.

    A runner used with ``workers > 1`` owns a lazily created process pool;
    :meth:`close` (or use as a context manager) releases it.  The pool is
    kept alive between sweeps so worker-side base-run caches stay warm
    across the technique variants of one experiment.
    """

    def __init__(
        self,
        config: Optional[SweepConfig] = None,
        resilience: Optional[ResilienceConfig] = None,
        supply_transform: Optional[SupplyTransform] = None,
        max_base_cache_entries: int = 32,
    ):
        if max_base_cache_entries < 1:
            raise ConfigurationError("max_base_cache_entries must be >= 1")
        self.config = config or SweepConfig()
        self.resilience = resilience
        self.supply_transform = supply_transform
        self.max_base_cache_entries = max_base_cache_entries
        self._base_cache: "OrderedDict[tuple, SimulationResult]" = OrderedDict()
        self._checkpoint_cells: Optional[Dict[str, dict]] = None
        self._sweep_count = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_workers = 0

    # ------------------------------------------------------------------
    # Process-pool lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool, if one was created."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
            self._executor_workers = 0

    def __enter__(self) -> "BenchmarkRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _ensure_executor(self, workers: int) -> ProcessPoolExecutor:
        if self._executor is not None and self._executor_workers != workers:
            self.close()
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=workers)
            self._executor_workers = workers
        return self._executor

    # ------------------------------------------------------------------
    # Building and running single cells
    # ------------------------------------------------------------------
    def _build_simulation(
        self,
        benchmark: str,
        controller: NoiseController,
        record: bool = False,
        seed: Optional[int] = None,
    ) -> Simulation:
        config = self.config
        processor = Processor.from_profile(
            SPEC2K[benchmark],
            n_instructions=config.instructions(),
            config=config.processor,
            supply_config=config.supply,
            seed=seed,
        )
        supply = PowerSupply(
            config.supply, initial_current=config.processor.min_current_amps
        )
        if self.supply_transform is not None:
            supply = self.supply_transform(supply, benchmark)
        return Simulation(
            processor,
            supply,
            controller,
            record=record,
            benchmark=benchmark,
            warmup_cycles=config.warmup_cycles,
        )

    def _base_key(self, benchmark: str, seed: Optional[int]) -> tuple:
        """Cache key of one base run.

        The sweep configuration (and the supply transform, compared by
        identity) is part of the key: ``config`` is a plain attribute, so a
        runner whose configuration is swapped between runs -- an ablation
        grid reusing one cache-shaped workflow -- must not be served a base
        run computed under the old configuration.
        """
        return (benchmark, seed, self.config, self.supply_transform)

    def run_base(
        self, benchmark: str, seed: Optional[int] = None
    ) -> SimulationResult:
        """Run (or fetch the cached) uncontrolled base configuration."""
        key = self._base_key(benchmark, seed)
        if key in self._base_cache:
            self._base_cache.move_to_end(key)
            return self._base_cache[key]
        simulation = self._build_simulation(benchmark, NullController(), seed=seed)
        result = simulation.run(self.config.n_cycles)
        self._base_cache[key] = result
        while len(self._base_cache) > self.max_base_cache_entries:
            self._base_cache.popitem(last=False)
        return result

    def clear_cache(self) -> None:
        """Drop all cached base runs (they are recomputed on demand)."""
        self._base_cache.clear()

    def run_technique(
        self,
        benchmark: str,
        factory: ControllerFactory,
        seed: Optional[int] = None,
    ) -> SimulationResult:
        controller = factory(self.config.supply, self.config.processor)
        simulation = self._build_simulation(benchmark, controller, seed=seed)
        return simulation.run(self.config.n_cycles)

    def compare(
        self,
        benchmark: str,
        factory: ControllerFactory,
        seed: Optional[int] = None,
    ) -> RelativeMetrics:
        base = self.run_base(benchmark, seed=seed)
        result = self.run_technique(benchmark, factory, seed=seed)
        return result.relative_to(base)

    def compare_seeds(
        self,
        benchmark: str,
        factory: ControllerFactory,
        n_seeds: int = 3,
    ) -> SeedStatistics:
        """Repeat the comparison over ``n_seeds`` regenerated traces."""
        if n_seeds < 1:
            raise ValueError("n_seeds must be at least 1")
        profile_seed = SPEC2K[benchmark].seed
        seeds: List[Optional[int]] = [None]
        seeds += [profile_seed + 1000 * k for k in range(1, n_seeds)]
        runs = tuple(
            self.compare(benchmark, factory, seed=seed) for seed in seeds
        )
        slowdowns = [run.slowdown for run in runs]
        energy_delays = [run.energy_delay for run in runs]

        def mean(values):
            return sum(values) / len(values)

        def std(values):
            centre = mean(values)
            return (sum((v - centre) ** 2 for v in values) / len(values)) ** 0.5

        return SeedStatistics(
            benchmark=benchmark,
            technique=runs[0].technique,
            n_seeds=n_seeds,
            mean_slowdown=mean(slowdowns),
            std_slowdown=std(slowdowns),
            mean_energy_delay=mean(energy_delays),
            std_energy_delay=std(energy_delays),
            max_violation_fraction=max(run.violation_fraction for run in runs),
            runs=runs,
        )

    # ------------------------------------------------------------------
    # Resilient sweeping
    # ------------------------------------------------------------------
    def _resolve_resilience(
        self, override: Optional[ResilienceConfig]
    ) -> ResilienceConfig:
        if override is not None:
            return override
        if self.resilience is not None:
            return self.resilience
        if DEFAULT_RESILIENCE is not None:
            return DEFAULT_RESILIENCE
        return ResilienceConfig()

    def _load_cells(self, resilience: ResilienceConfig) -> Dict[str, dict]:
        """The in-memory mirror of the checkpoint's completed cells."""
        if self._checkpoint_cells is not None:
            return self._checkpoint_cells
        cells: Dict[str, dict] = {}
        path = resilience.checkpoint_path
        if resilience.resume and path and os.path.exists(path):
            data = load_checkpoint(path)
            if (
                data.get("n_cycles") != self.config.n_cycles
                or data.get("warmup_cycles") != self.config.warmup_cycles
            ):
                raise ConfigurationError(
                    f"checkpoint {path!r} was written for"
                    f" n_cycles={data.get('n_cycles')}"
                    f" warmup_cycles={data.get('warmup_cycles')}, which does"
                    f" not match this sweep"
                    f" (n_cycles={self.config.n_cycles},"
                    f" warmup_cycles={self.config.warmup_cycles})"
                )
            cells = dict(data.get("cells", {}))
        self._checkpoint_cells = cells
        return cells

    def _save_cells(self, resilience: ResilienceConfig) -> None:
        if resilience.checkpoint_path is None:
            return
        _write_checkpoint(
            resilience.checkpoint_path,
            {
                "version": _CHECKPOINT_VERSION,
                "n_cycles": self.config.n_cycles,
                "warmup_cycles": self.config.warmup_cycles,
                "cells": self._checkpoint_cells or {},
            },
        )

    def _run_cell(
        self,
        benchmark: str,
        technique: str,
        factory: ControllerFactory,
        resilience: ResilienceConfig,
        base_seed: Optional[int] = None,
    ):
        """One (benchmark, technique, seed) cell with timeout and retry.

        Returns ``(metrics, None)`` on success or ``(None, FailureReport)``
        once every attempt -- the original run plus ``max_retries``
        deterministically re-seeded ones -- has failed.  Interrupts
        (KeyboardInterrupt / SystemExit) always propagate so a killed sweep
        stops at a checkpointed boundary instead of "retrying" the kill.
        """
        last_error: Optional[BaseException] = None
        seed = base_seed
        attempts = resilience.max_retries + 1
        for attempt in range(attempts):
            if attempt:
                origin = (
                    base_seed
                    if base_seed is not None
                    else SPEC2K[benchmark].seed
                )
                seed = origin + _RESEED_STRIDE * attempt
            try:
                metrics = _call_with_timeout(
                    lambda: self.compare(benchmark, factory, seed=seed),
                    resilience.timeout_s,
                )
                return metrics, None
            except Exception as error:
                last_error = error
        return None, FailureReport(
            benchmark=benchmark,
            technique=technique,
            seed=seed,
            attempts=attempts,
            error_type=type(last_error).__name__,
            message=str(last_error),
        )

    def _effective_workers(
        self,
        resilience: ResilienceConfig,
        factory: ControllerFactory,
        n_pending: int,
    ) -> int:
        """Workers actually usable for this sweep (1 = run in-process).

        The parallel backend needs the cell spec -- sweep configuration,
        supply transform and controller factory -- to cross a process
        boundary; a spec that does not pickle (a closure-built factory, a
        transform closed over live simulator objects) degrades to the
        sequential path with a warning rather than failing the sweep.
        """
        if resilience.workers <= 1 or n_pending <= 1:
            return 1
        try:
            pickle.dumps(
                (self.config, self.supply_transform, factory),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception as error:
            warnings.warn(
                f"parallel sweep disabled: cell spec is not picklable"
                f" ({type(error).__name__}: {error}); running sequentially",
                RuntimeWarning,
                stacklevel=4,
            )
            return 1
        return min(resilience.workers, n_pending)

    def sweep(
        self,
        factory: ControllerFactory,
        benchmarks: Optional[Sequence[str]] = None,
        progress: Optional[Callable[[str, RelativeMetrics], None]] = None,
        resilience: Optional[ResilienceConfig] = None,
        seeds: Optional[Sequence[Optional[int]]] = None,
    ) -> TechniqueSummary:
        """Run one technique over a (benchmark, seed) grid and aggregate.

        With a :class:`ResilienceConfig` (passed here, on the runner, or via
        :data:`DEFAULT_RESILIENCE`), each completed cell is appended to the
        JSON checkpoint before the next starts, failed cells are retried on
        re-seeded traces and finally reported as :class:`FailureReport`
        entries, and ``resume=True`` skips cells already in the checkpoint
        -- producing a summary identical to an uninterrupted sweep.

        ``seeds`` widens the grid: every benchmark runs once per seed
        (default ``(None,)``, today's single-run behaviour), with each
        (benchmark, seed) pair checkpointed as its own cell.

        ``workers > 1`` executes pending cells on a process pool.  The
        summary (rows, failure order, aggregates) is bit-identical to a
        sequential sweep -- rows are assembled in grid order regardless of
        completion order -- and the final checkpoint file is byte-identical
        (cells are keyed, and the JSON is written with sorted keys).  Only
        the ``progress`` callback order differs: sequential sweeps report
        cells in grid order, parallel sweeps in completion order (cached
        cells first).

        The returned summary carries a ``timings`` attribute with the
        per-phase wall-clock breakdown (see :class:`TechniqueSummary`).
        """
        t_total = time.perf_counter()
        resilience = self._resolve_resilience(resilience)
        names = list(benchmarks) if benchmarks is not None else sorted(SPEC2K)
        seed_list: List[Optional[int]] = (
            list(seeds) if seeds is not None else [None]
        )
        if not seed_list:
            raise ConfigurationError("seeds must be non-empty when given")
        # One probe controller names the technique (cells are keyed by it).
        technique = factory(self.config.supply, self.config.processor).name
        cells = self._load_cells(resilience)
        ordinal = self._sweep_count
        self._sweep_count += 1
        grid = [(name, seed) for name in names for seed in seed_list]

        results: Dict[Tuple[str, Optional[int]], RelativeMetrics] = {}
        failure_map: Dict[Tuple[str, Optional[int]], FailureReport] = {}
        pending: List[Tuple[str, Optional[int]]] = []
        for name, seed in grid:
            key = _cell_key(ordinal, name, technique, seed)
            if key in cells:
                results[(name, seed)] = _metrics_from_dict(cells[key])
            else:
                pending.append((name, seed))
        workers = self._effective_workers(resilience, factory, len(pending))
        timings = {
            "workers": float(workers),
            "cells_total": float(len(grid)),
            "cells_cached": float(len(grid) - len(pending)),
            "setup": time.perf_counter() - t_total,
            "checkpoint_io": 0.0,
        }

        t_execute = time.perf_counter()
        if workers > 1:
            self._execute_parallel(
                pending, ordinal, technique, factory, resilience, workers,
                progress, cells, results, failure_map, timings, grid,
            )
        else:
            self._execute_sequential(
                grid, ordinal, technique, factory, resilience,
                progress, cells, results, failure_map, timings,
            )
        timings["execute"] = time.perf_counter() - t_execute

        t_aggregate = time.perf_counter()
        rows: List[RelativeMetrics] = []
        failures: List[FailureReport] = []
        violation_cycles = 0
        for cell in grid:
            metrics = results.get(cell)
            if metrics is not None:
                rows.append(metrics)
                violation_cycles += round(
                    metrics.violation_fraction * self.config.n_cycles
                )
            elif cell in failure_map:
                failures.append(failure_map[cell])
        if not rows:
            detail = "; ".join(
                f"{f.benchmark}: {f.error_type}: {f.message}" for f in failures
            )
            raise FaultError(
                f"every cell of the {technique!r} sweep failed ({detail})"
            )
        summary = summarize(rows, violation_cycles, failures=tuple(failures))
        timings["aggregate"] = time.perf_counter() - t_aggregate
        timings["total"] = time.perf_counter() - t_total
        # Diagnostic attribute, deliberately outside the dataclass fields
        # (see TechniqueSummary): summaries stay comparable across backends.
        object.__setattr__(summary, "timings", timings)
        return summary

    def _execute_sequential(
        self,
        grid: Sequence[Tuple[str, Optional[int]]],
        ordinal: int,
        technique: str,
        factory: ControllerFactory,
        resilience: ResilienceConfig,
        progress: Optional[Callable[[str, RelativeMetrics], None]],
        cells: Dict[str, dict],
        results: Dict[Tuple[str, Optional[int]], RelativeMetrics],
        failure_map: Dict[Tuple[str, Optional[int]], FailureReport],
        timings: Dict[str, float],
    ) -> None:
        """Run pending cells in-process, in grid order."""
        for name, seed in grid:
            cell = (name, seed)
            if cell in results:  # resumed from the checkpoint
                if progress is not None:
                    progress(name, results[cell])
                continue
            metrics, failure = self._run_cell(
                name, technique, factory, resilience, base_seed=seed
            )
            if failure is not None:
                failure_map[cell] = failure
                continue
            results[cell] = metrics
            cells[_cell_key(ordinal, name, technique, seed)] = asdict(metrics)
            t_io = time.perf_counter()
            self._save_cells(resilience)
            timings["checkpoint_io"] += time.perf_counter() - t_io
            if progress is not None:
                progress(name, metrics)

    def _execute_parallel(
        self,
        pending: Sequence[Tuple[str, Optional[int]]],
        ordinal: int,
        technique: str,
        factory: ControllerFactory,
        resilience: ResilienceConfig,
        workers: int,
        progress: Optional[Callable[[str, RelativeMetrics], None]],
        cells: Dict[str, dict],
        results: Dict[Tuple[str, Optional[int]], RelativeMetrics],
        failure_map: Dict[Tuple[str, Optional[int]], FailureReport],
        timings: Dict[str, float],
        grid: Sequence[Tuple[str, Optional[int]]],
    ) -> None:
        """Run pending cells on the process pool.

        The parent writes the checkpoint as cells complete (completion
        order, but cell-keyed, so the final file is byte-identical to a
        sequential run's) and reports ``progress`` in completion order.
        Cached cells are reported first, in grid order.
        """
        if progress is not None:
            for cell in grid:
                if cell in results:
                    progress(cell[0], results[cell])
        spec_blob = pickle.dumps(
            (self.config, self.supply_transform, self.max_base_cache_entries),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        executor = self._ensure_executor(workers)
        futures = {
            executor.submit(
                _worker_run_cell,
                spec_blob,
                factory,
                name,
                technique,
                seed,
                resilience.timeout_s,
                resilience.max_retries,
            ): (name, seed)
            for name, seed in pending
        }
        try:
            for future in as_completed(futures):
                name, seed = futures[future]
                try:
                    metrics, failure = future.result()
                except BrokenProcessPool as error:
                    # A worker died hard (OOM kill, segfault): the pool is
                    # poisoned.  Completed cells are already checkpointed,
                    # so a --resume continues from here.
                    self.close()
                    raise FaultError(
                        f"worker process died while running cell"
                        f" ({name!r}, seed={seed!r}): {error}; completed"
                        f" cells are checkpointed -- resume to continue"
                    ) from error
                if failure is not None:
                    failure_map[(name, seed)] = failure
                    continue
                results[(name, seed)] = metrics
                cells[_cell_key(ordinal, name, technique, seed)] = asdict(
                    metrics
                )
                t_io = time.perf_counter()
                self._save_cells(resilience)
                timings["checkpoint_io"] += time.perf_counter() - t_io
                if progress is not None:
                    progress(name, metrics)
        except BaseException:
            # A kill (or a progress-raised abort) must not strand queued
            # work: unstarted cells are cancelled, in-flight results
            # discarded.  The checkpoint holds everything completed so far.
            for future in futures:
                future.cancel()
            raise


def summarize(
    rows: Iterable[RelativeMetrics],
    total_violation_cycles: int = 0,
    failures: Tuple[FailureReport, ...] = (),
) -> TechniqueSummary:
    """Aggregate per-benchmark relative metrics into a table row."""
    rows = tuple(rows)
    if not rows:
        raise ValueError("summarize needs at least one row")
    worst = max(rows, key=lambda row: row.slowdown)
    return TechniqueSummary(
        technique=rows[0].technique,
        avg_slowdown=sum(row.slowdown for row in rows) / len(rows),
        worst_slowdown=worst.slowdown,
        worst_benchmark=worst.benchmark,
        apps_over_15_percent=sum(1 for row in rows if row.slowdown > 1.15),
        avg_energy_delay=sum(row.energy_delay for row in rows) / len(rows),
        avg_first_level_fraction=(
            sum(row.first_level_fraction for row in rows) / len(rows)
        ),
        avg_second_level_fraction=(
            sum(row.second_level_fraction for row in rows) / len(rows)
        ),
        total_violation_cycles=total_violation_cycles,
        per_benchmark=rows,
        failures=failures,
    )
