"""Batch running: benchmark x technique sweeps with Table 3/4/5 aggregation.

A *controller factory* is any callable ``(supply_config, processor_config)
-> NoiseController``; the runner builds a fresh processor and supply per
run (so runs are independent and deterministic), executes the base
configuration once per benchmark, and reports each technique's metrics
relative to it.

Sweeps are *resilient*: a :class:`ResilienceConfig` adds per-cell
wall-clock timeouts, bounded retry with deterministic re-seeding, and a
JSON checkpoint written after every completed (benchmark, technique, seed)
cell, so a killed sweep resumes exactly where it stopped (see
``docs/robustness.md``).  Cells that exhaust their retry budget become
structured :class:`FailureReport` entries on the :class:`TechniqueSummary`
instead of aborting the whole sweep.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass, fields
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import (
    PowerSupplyConfig,
    ProcessorConfig,
    TABLE1_PROCESSOR,
    TABLE1_SUPPLY,
)
from repro.core.controller import NoiseController, NullController
from repro.errors import ConfigurationError, FaultError
from repro.power.supply import PowerSupply
from repro.sim.metrics import RelativeMetrics, SimulationResult
from repro.sim.simulation import Simulation
from repro.uarch.processor import Processor
from repro.uarch.workloads import SPEC2K

__all__ = [
    "SweepConfig",
    "ResilienceConfig",
    "FailureReport",
    "TechniqueSummary",
    "SeedStatistics",
    "BenchmarkRunner",
    "summarize",
    "load_checkpoint",
    "DEFAULT_RESILIENCE",
]

ControllerFactory = Callable[[PowerSupplyConfig, ProcessorConfig], NoiseController]
SupplyTransform = Callable[[PowerSupply, str], PowerSupply]

#: Process-wide fallback resilience, installed temporarily by
#: :func:`repro.experiments.registry.run_experiment` so experiments that
#: build their own runners deep inside still honour ``--resume`` /
#: ``--timeout-s`` / ``--max-retries`` without threading a parameter
#: through every experiment signature.
DEFAULT_RESILIENCE: Optional["ResilienceConfig"] = None

#: Seed stride between retry attempts: a failed cell re-runs on a freshly
#: regenerated trace whose seed is a deterministic function of (profile
#: seed, attempt), so retries are reproducible run to run.
_RESEED_STRIDE = 104_729

#: Version tag of the checkpoint JSON schema.
_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class SweepConfig:
    """How long and on what hardware to run each benchmark."""

    n_cycles: int = 60_000
    warmup_cycles: int = 2_000
    supply: PowerSupplyConfig = TABLE1_SUPPLY
    processor: ProcessorConfig = TABLE1_PROCESSOR
    trace_instructions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_cycles <= 0:
            raise ConfigurationError("n_cycles must be positive")
        if self.warmup_cycles < 0:
            raise ConfigurationError("warmup_cycles must be non-negative")
        if self.trace_instructions is not None and self.trace_instructions <= 0:
            raise ConfigurationError(
                "trace_instructions must be positive when set"
            )

    def instructions(self) -> int:
        if self.trace_instructions is not None:
            return self.trace_instructions
        # Enough instructions that no workload wraps more than a few times.
        return max(50_000, int((self.n_cycles + self.warmup_cycles) * 4.5))


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault tolerance for a sweep: timeout, retries, checkpointing."""

    #: wall-clock budget per (benchmark, technique, seed) cell; None = none
    timeout_s: Optional[float] = None
    #: extra attempts after the first, each on a deterministically re-seeded
    #: trace (seed = profile seed + 104729 * attempt)
    max_retries: int = 0
    #: JSON file updated after every completed cell; None disables
    checkpoint_path: Optional[str] = None
    #: load the checkpoint and skip already-completed cells
    resume: bool = False

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive when set")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.resume and self.checkpoint_path is None:
            raise ConfigurationError("resume requires a checkpoint_path")


@dataclass(frozen=True)
class FailureReport:
    """One sweep cell that exhausted its retry budget."""

    benchmark: str
    technique: str
    seed: Optional[int]
    attempts: int
    error_type: str
    message: str


@dataclass(frozen=True)
class SeedStatistics:
    """Mean / spread of one technique on one benchmark across trace seeds.

    Seeds regenerate the synthetic trace from the same statistical profile,
    so the spread measures sensitivity to the particular random instruction
    stream rather than to the workload's character.
    """

    benchmark: str
    technique: str
    n_seeds: int
    mean_slowdown: float
    std_slowdown: float
    mean_energy_delay: float
    std_energy_delay: float
    max_violation_fraction: float
    runs: Tuple[RelativeMetrics, ...]


@dataclass(frozen=True)
class TechniqueSummary:
    """Aggregate of one technique over many benchmarks (a table row)."""

    technique: str
    avg_slowdown: float
    worst_slowdown: float
    worst_benchmark: str
    apps_over_15_percent: int
    avg_energy_delay: float
    avg_first_level_fraction: float
    avg_second_level_fraction: float
    total_violation_cycles: int
    per_benchmark: Tuple[RelativeMetrics, ...]
    failures: Tuple[FailureReport, ...] = ()


# ----------------------------------------------------------------------
# Checkpoint I/O
# ----------------------------------------------------------------------

def _cell_key(
    ordinal: int, benchmark: str, technique: str, seed: Optional[int]
) -> str:
    """Checkpoint key of one cell.

    ``ordinal`` is the index of the sweep within its runner: experiments
    routinely sweep several *variants* of one technique (same controller
    name, different knobs) through one runner, and the ordinal keeps their
    cells distinct.  Re-running the same experiment replays the same sweep
    order, so ordinals are stable across a kill/resume boundary.
    """
    return f"s{ordinal}|{benchmark}|{technique}|{'-' if seed is None else seed}"


def load_checkpoint(path: str) -> dict:
    """Read a sweep checkpoint; returns its raw dictionary form."""
    with open(path) as handle:
        data = json.load(handle)
    if data.get("version") != _CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"checkpoint {path!r} has version {data.get('version')!r},"
            f" expected {_CHECKPOINT_VERSION}"
        )
    return data


def _write_checkpoint(path: str, payload: dict) -> None:
    """Atomically replace the checkpoint (write-temp-then-rename)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w") as handle:
        json.dump(payload, handle, indent=0, sort_keys=True)
    os.replace(tmp_path, path)


def _metrics_from_dict(data: dict) -> RelativeMetrics:
    names = {f.name for f in fields(RelativeMetrics)}
    return RelativeMetrics(**{k: v for k, v in data.items() if k in names})


def _call_with_timeout(fn: Callable[[], object], timeout_s: Optional[float]):
    """Run ``fn`` bounded by ``timeout_s`` of wall-clock time.

    The work runs on a daemon thread so a hung cell cannot wedge the sweep;
    on timeout the thread is abandoned (Python offers no preemptive kill)
    and a :class:`FaultError` raised.  Without a timeout, runs inline.
    """
    if timeout_s is None:
        return fn()
    outcome: dict = {}

    def target():
        try:
            outcome["value"] = fn()
        except BaseException as error:  # propagate to the caller's thread
            outcome["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise FaultError(
            f"run exceeded the wall-clock timeout of {timeout_s:g} s"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


class BenchmarkRunner:
    """Runs benchmarks against controller factories, caching base runs.

    Parameters
    ----------
    config:
        Cycle counts and hardware configuration shared by every run.
    resilience:
        Default :class:`ResilienceConfig` for :meth:`sweep`; when None the
        module-level :data:`DEFAULT_RESILIENCE` (set by the experiments
        registry from CLI flags) applies.
    supply_transform:
        Optional ``(supply, benchmark) -> supply`` hook wrapping the power
        supply of every run -- the fault-injection subsystem uses it to
        mount adversarial current attackers on otherwise unchanged sweeps.
    max_base_cache_entries:
        Bound on the cached base runs (LRU eviction), so long multi-seed
        sweeps cannot grow memory without limit.
    """

    def __init__(
        self,
        config: Optional[SweepConfig] = None,
        resilience: Optional[ResilienceConfig] = None,
        supply_transform: Optional[SupplyTransform] = None,
        max_base_cache_entries: int = 32,
    ):
        if max_base_cache_entries < 1:
            raise ConfigurationError("max_base_cache_entries must be >= 1")
        self.config = config or SweepConfig()
        self.resilience = resilience
        self.supply_transform = supply_transform
        self.max_base_cache_entries = max_base_cache_entries
        self._base_cache: "OrderedDict[tuple, SimulationResult]" = OrderedDict()
        self._checkpoint_cells: Optional[Dict[str, dict]] = None
        self._sweep_count = 0

    # ------------------------------------------------------------------
    # Building and running single cells
    # ------------------------------------------------------------------
    def _build_simulation(
        self,
        benchmark: str,
        controller: NoiseController,
        record: bool = False,
        seed: Optional[int] = None,
    ) -> Simulation:
        config = self.config
        processor = Processor.from_profile(
            SPEC2K[benchmark],
            n_instructions=config.instructions(),
            config=config.processor,
            supply_config=config.supply,
            seed=seed,
        )
        supply = PowerSupply(
            config.supply, initial_current=config.processor.min_current_amps
        )
        if self.supply_transform is not None:
            supply = self.supply_transform(supply, benchmark)
        return Simulation(
            processor,
            supply,
            controller,
            record=record,
            benchmark=benchmark,
            warmup_cycles=config.warmup_cycles,
        )

    def run_base(
        self, benchmark: str, seed: Optional[int] = None
    ) -> SimulationResult:
        """Run (or fetch the cached) uncontrolled base configuration."""
        key = (benchmark, seed)
        if key in self._base_cache:
            self._base_cache.move_to_end(key)
            return self._base_cache[key]
        simulation = self._build_simulation(benchmark, NullController(), seed=seed)
        result = simulation.run(self.config.n_cycles)
        self._base_cache[key] = result
        while len(self._base_cache) > self.max_base_cache_entries:
            self._base_cache.popitem(last=False)
        return result

    def clear_cache(self) -> None:
        """Drop all cached base runs (they are recomputed on demand)."""
        self._base_cache.clear()

    def run_technique(
        self,
        benchmark: str,
        factory: ControllerFactory,
        seed: Optional[int] = None,
    ) -> SimulationResult:
        controller = factory(self.config.supply, self.config.processor)
        simulation = self._build_simulation(benchmark, controller, seed=seed)
        return simulation.run(self.config.n_cycles)

    def compare(
        self,
        benchmark: str,
        factory: ControllerFactory,
        seed: Optional[int] = None,
    ) -> RelativeMetrics:
        base = self.run_base(benchmark, seed=seed)
        result = self.run_technique(benchmark, factory, seed=seed)
        return result.relative_to(base)

    def compare_seeds(
        self,
        benchmark: str,
        factory: ControllerFactory,
        n_seeds: int = 3,
    ) -> SeedStatistics:
        """Repeat the comparison over ``n_seeds`` regenerated traces."""
        if n_seeds < 1:
            raise ValueError("n_seeds must be at least 1")
        profile_seed = SPEC2K[benchmark].seed
        seeds: List[Optional[int]] = [None]
        seeds += [profile_seed + 1000 * k for k in range(1, n_seeds)]
        runs = tuple(
            self.compare(benchmark, factory, seed=seed) for seed in seeds
        )
        slowdowns = [run.slowdown for run in runs]
        energy_delays = [run.energy_delay for run in runs]

        def mean(values):
            return sum(values) / len(values)

        def std(values):
            centre = mean(values)
            return (sum((v - centre) ** 2 for v in values) / len(values)) ** 0.5

        return SeedStatistics(
            benchmark=benchmark,
            technique=runs[0].technique,
            n_seeds=n_seeds,
            mean_slowdown=mean(slowdowns),
            std_slowdown=std(slowdowns),
            mean_energy_delay=mean(energy_delays),
            std_energy_delay=std(energy_delays),
            max_violation_fraction=max(run.violation_fraction for run in runs),
            runs=runs,
        )

    # ------------------------------------------------------------------
    # Resilient sweeping
    # ------------------------------------------------------------------
    def _resolve_resilience(
        self, override: Optional[ResilienceConfig]
    ) -> ResilienceConfig:
        if override is not None:
            return override
        if self.resilience is not None:
            return self.resilience
        if DEFAULT_RESILIENCE is not None:
            return DEFAULT_RESILIENCE
        return ResilienceConfig()

    def _load_cells(self, resilience: ResilienceConfig) -> Dict[str, dict]:
        """The in-memory mirror of the checkpoint's completed cells."""
        if self._checkpoint_cells is not None:
            return self._checkpoint_cells
        cells: Dict[str, dict] = {}
        path = resilience.checkpoint_path
        if resilience.resume and path and os.path.exists(path):
            data = load_checkpoint(path)
            if (
                data.get("n_cycles") != self.config.n_cycles
                or data.get("warmup_cycles") != self.config.warmup_cycles
            ):
                raise ConfigurationError(
                    f"checkpoint {path!r} was written for"
                    f" n_cycles={data.get('n_cycles')}"
                    f" warmup_cycles={data.get('warmup_cycles')}, which does"
                    f" not match this sweep"
                    f" (n_cycles={self.config.n_cycles},"
                    f" warmup_cycles={self.config.warmup_cycles})"
                )
            cells = dict(data.get("cells", {}))
        self._checkpoint_cells = cells
        return cells

    def _save_cells(self, resilience: ResilienceConfig) -> None:
        if resilience.checkpoint_path is None:
            return
        _write_checkpoint(
            resilience.checkpoint_path,
            {
                "version": _CHECKPOINT_VERSION,
                "n_cycles": self.config.n_cycles,
                "warmup_cycles": self.config.warmup_cycles,
                "cells": self._checkpoint_cells or {},
            },
        )

    def _run_cell(
        self,
        benchmark: str,
        technique: str,
        factory: ControllerFactory,
        resilience: ResilienceConfig,
    ):
        """One (benchmark, technique) cell with timeout and bounded retry.

        Returns ``(metrics, None)`` on success or ``(None, FailureReport)``
        once every attempt -- the original run plus ``max_retries``
        deterministically re-seeded ones -- has failed.  Interrupts
        (KeyboardInterrupt / SystemExit) always propagate so a killed sweep
        stops at a checkpointed boundary instead of "retrying" the kill.
        """
        last_error: Optional[BaseException] = None
        seed: Optional[int] = None
        attempts = resilience.max_retries + 1
        for attempt in range(attempts):
            seed = (
                None
                if attempt == 0
                else SPEC2K[benchmark].seed + _RESEED_STRIDE * attempt
            )
            try:
                metrics = _call_with_timeout(
                    lambda: self.compare(benchmark, factory, seed=seed),
                    resilience.timeout_s,
                )
                return metrics, None
            except Exception as error:
                last_error = error
        return None, FailureReport(
            benchmark=benchmark,
            technique=technique,
            seed=seed,
            attempts=attempts,
            error_type=type(last_error).__name__,
            message=str(last_error),
        )

    def sweep(
        self,
        factory: ControllerFactory,
        benchmarks: Optional[Sequence[str]] = None,
        progress: Optional[Callable[[str, RelativeMetrics], None]] = None,
        resilience: Optional[ResilienceConfig] = None,
    ) -> TechniqueSummary:
        """Run one technique over a benchmark list and aggregate.

        With a :class:`ResilienceConfig` (passed here, on the runner, or via
        :data:`DEFAULT_RESILIENCE`), each completed cell is appended to the
        JSON checkpoint before the next starts, failed cells are retried on
        re-seeded traces and finally reported as :class:`FailureReport`
        entries, and ``resume=True`` skips cells already in the checkpoint
        -- producing a summary identical to an uninterrupted sweep.
        """
        resilience = self._resolve_resilience(resilience)
        names = list(benchmarks) if benchmarks is not None else sorted(SPEC2K)
        # One probe controller names the technique (cells are keyed by it).
        technique = factory(self.config.supply, self.config.processor).name
        cells = self._load_cells(resilience)
        ordinal = self._sweep_count
        self._sweep_count += 1

        rows: List[RelativeMetrics] = []
        failures: List[FailureReport] = []
        violation_cycles = 0
        for name in names:
            key = _cell_key(ordinal, name, technique, None)
            if key in cells:
                metrics = _metrics_from_dict(cells[key])
            else:
                metrics, failure = self._run_cell(
                    name, technique, factory, resilience
                )
                if failure is not None:
                    failures.append(failure)
                    continue
                cells[key] = asdict(metrics)
                self._save_cells(resilience)
            rows.append(metrics)
            violation_cycles += round(
                metrics.violation_fraction * self.config.n_cycles
            )
            if progress is not None:
                progress(name, metrics)
        if not rows:
            detail = "; ".join(
                f"{f.benchmark}: {f.error_type}: {f.message}" for f in failures
            )
            raise FaultError(
                f"every cell of the {technique!r} sweep failed ({detail})"
            )
        return summarize(rows, violation_cycles, failures=tuple(failures))


def summarize(
    rows: Iterable[RelativeMetrics],
    total_violation_cycles: int = 0,
    failures: Tuple[FailureReport, ...] = (),
) -> TechniqueSummary:
    """Aggregate per-benchmark relative metrics into a table row."""
    rows = tuple(rows)
    if not rows:
        raise ValueError("summarize needs at least one row")
    worst = max(rows, key=lambda row: row.slowdown)
    return TechniqueSummary(
        technique=rows[0].technique,
        avg_slowdown=sum(row.slowdown for row in rows) / len(rows),
        worst_slowdown=worst.slowdown,
        worst_benchmark=worst.benchmark,
        apps_over_15_percent=sum(1 for row in rows if row.slowdown > 1.15),
        avg_energy_delay=sum(row.energy_delay for row in rows) / len(rows),
        avg_first_level_fraction=(
            sum(row.first_level_fraction for row in rows) / len(rows)
        ),
        avg_second_level_fraction=(
            sum(row.second_level_fraction for row in rows) / len(rows)
        ),
        total_violation_cycles=total_violation_cycles,
        per_benchmark=rows,
        failures=failures,
    )
