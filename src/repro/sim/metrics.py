"""Result records and the relative metrics the paper's tables report.

The paper evaluates techniques by *relative slowdown* (execution-time ratio
at equal work) and *relative energy-delay* against the uncontrolled base
processor.  With fixed-cycle runs, time per instruction is ``1 / IPC``, so:

* ``relative_slowdown = IPC_base / IPC_technique``
* ``relative_energy  = energy-per-instruction ratio``
* ``relative_energy_delay = relative_energy * relative_slowdown``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import SimulationError

__all__ = ["SimulationResult", "RelativeMetrics"]


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    benchmark: str
    technique: str
    cycles: int
    instructions: int
    energy_joules: float
    phantom_energy_joules: float
    violation_cycles: int
    violation_events: int
    first_level_cycles: int = 0
    second_level_cycles: int = 0
    currents: Optional[List[float]] = field(default=None, repr=False)
    voltages: Optional[List[float]] = field(default=None, repr=False)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def violation_fraction(self) -> float:
        return self.violation_cycles / self.cycles if self.cycles else 0.0

    @property
    def energy_per_instruction(self) -> float:
        if self.instructions == 0:
            raise SimulationError("no instructions committed; cannot normalize")
        return self.energy_joules / self.instructions

    @property
    def first_level_fraction(self) -> float:
        return self.first_level_cycles / self.cycles if self.cycles else 0.0

    @property
    def second_level_fraction(self) -> float:
        return self.second_level_cycles / self.cycles if self.cycles else 0.0

    def relative_to(self, base: "SimulationResult") -> "RelativeMetrics":
        """Relative slowdown / energy / energy-delay against a base run."""
        if base.benchmark != self.benchmark:
            raise SimulationError(
                f"comparing {self.benchmark} against base {base.benchmark}"
            )
        slowdown = base.ipc / self.ipc if self.ipc else float("inf")
        # A zero-energy base (degenerate power model, zero-cost trace)
        # mirrors the zero-IPC guard: report inf rather than divide by
        # zero, so the aggregation layer sees a sentinel, not a crash.
        energy = (
            self.energy_per_instruction / base.energy_per_instruction
            if base.energy_per_instruction
            else float("inf")
        )
        return RelativeMetrics(
            benchmark=self.benchmark,
            technique=self.technique,
            slowdown=slowdown,
            energy=energy,
            energy_delay=slowdown * energy,
            violation_fraction=self.violation_fraction,
            base_violation_fraction=base.violation_fraction,
            first_level_fraction=self.first_level_fraction,
            second_level_fraction=self.second_level_fraction,
        )


@dataclass(frozen=True)
class RelativeMetrics:
    """One technique's cost on one benchmark, relative to the base run."""

    benchmark: str
    technique: str
    slowdown: float
    energy: float
    energy_delay: float
    violation_fraction: float
    base_violation_fraction: float
    first_level_fraction: float = 0.0
    second_level_fraction: float = 0.0
