"""Simulation harness: the cycle loop, metrics and batch sweeps."""

from repro.sim.metrics import RelativeMetrics, SimulationResult
from repro.sim.runner import (
    BenchmarkRunner,
    SeedStatistics,
    SweepConfig,
    TechniqueSummary,
    summarize,
)
from repro.sim.simulation import Simulation

__all__ = [
    "RelativeMetrics",
    "SimulationResult",
    "BenchmarkRunner",
    "SeedStatistics",
    "SweepConfig",
    "TechniqueSummary",
    "summarize",
    "Simulation",
]
