"""Simulation harness: the cycle loop, metrics and batch sweeps."""

from repro.sim.metrics import RelativeMetrics, SimulationResult
from repro.sim.runner import (
    BenchmarkRunner,
    FailureReport,
    ResilienceConfig,
    SeedStatistics,
    SweepConfig,
    TechniqueSummary,
    load_checkpoint,
    summarize,
)
from repro.sim.simulation import Simulation

__all__ = [
    "RelativeMetrics",
    "SimulationResult",
    "BenchmarkRunner",
    "FailureReport",
    "ResilienceConfig",
    "SeedStatistics",
    "SweepConfig",
    "TechniqueSummary",
    "load_checkpoint",
    "summarize",
    "Simulation",
]
