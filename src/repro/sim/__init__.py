"""Simulation harness: the cycle loop, metrics and batch sweeps."""

from repro.sim.backends import (
    BACKEND_CHOICES,
    ProcessPoolBackend,
    SequentialBackend,
    SweepBackend,
    SweepJob,
    select_backend,
)
from repro.sim.metrics import RelativeMetrics, SimulationResult
from repro.sim.runner import (
    BenchmarkRunner,
    FailureReport,
    ResilienceConfig,
    SeedStatistics,
    SweepConfig,
    TechniqueSummary,
    load_checkpoint,
    summarize,
)
from repro.sim.simulation import Simulation

__all__ = [
    "BACKEND_CHOICES",
    "RelativeMetrics",
    "SimulationResult",
    "BenchmarkRunner",
    "FailureReport",
    "ProcessPoolBackend",
    "ResilienceConfig",
    "SeedStatistics",
    "SequentialBackend",
    "SweepBackend",
    "SweepConfig",
    "SweepJob",
    "TechniqueSummary",
    "load_checkpoint",
    "select_backend",
    "summarize",
    "Simulation",
]
