"""Export simulation results to CSV and JSON.

Used by downstream analysis (spreadsheets, plotting outside this repo) and
by the experiment scripts when asked to persist machine-readable results
next to the rendered text tables.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict
from typing import Iterable, Sequence, Union

from repro.sim.metrics import RelativeMetrics, SimulationResult
from repro.sim.runner import TechniqueSummary

__all__ = [
    "results_to_csv",
    "metrics_to_csv",
    "summary_to_dict",
    "to_json",
    "write_csv",
]

_RESULT_FIELDS = (
    "benchmark",
    "technique",
    "cycles",
    "instructions",
    "ipc",
    "energy_joules",
    "phantom_energy_joules",
    "violation_cycles",
    "violation_fraction",
    "first_level_fraction",
    "second_level_fraction",
)

_METRIC_FIELDS = (
    "benchmark",
    "technique",
    "slowdown",
    "energy",
    "energy_delay",
    "violation_fraction",
    "base_violation_fraction",
    "first_level_fraction",
    "second_level_fraction",
)


def results_to_csv(results: Iterable[SimulationResult]) -> str:
    """Render simulation results as CSV text (one row per run)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_RESULT_FIELDS)
    for result in results:
        writer.writerow([getattr(result, field) for field in _RESULT_FIELDS])
    return buffer.getvalue()


def metrics_to_csv(metrics: Iterable[RelativeMetrics]) -> str:
    """Render relative metrics as CSV text (one row per benchmark)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_METRIC_FIELDS)
    for row in metrics:
        writer.writerow([getattr(row, field) for field in _METRIC_FIELDS])
    return buffer.getvalue()


def summary_to_dict(summary: TechniqueSummary) -> dict:
    """Convert a technique summary (and its per-benchmark rows) to plain data."""
    data = {
        "technique": summary.technique,
        "avg_slowdown": summary.avg_slowdown,
        "worst_slowdown": summary.worst_slowdown,
        "worst_benchmark": summary.worst_benchmark,
        "apps_over_15_percent": summary.apps_over_15_percent,
        "avg_energy_delay": summary.avg_energy_delay,
        "avg_first_level_fraction": summary.avg_first_level_fraction,
        "avg_second_level_fraction": summary.avg_second_level_fraction,
        "total_violation_cycles": summary.total_violation_cycles,
        "per_benchmark": [asdict(row) for row in summary.per_benchmark],
    }
    # Diagnostic attributes live outside the dataclass fields (sweeps
    # attach them; hand-built summaries may not) -- export them when
    # present so timings and supervision incidents survive into the JSON.
    timings = getattr(summary, "timings", None)
    if timings is not None:
        data["timings"] = dict(timings)
    incidents = getattr(summary, "incidents", None)
    if incidents is not None:
        data["incidents"] = [asdict(incident) for incident in incidents]
    return data


def to_json(
    payload: Union[TechniqueSummary, Sequence[RelativeMetrics]], indent: int = 2
) -> str:
    """Serialize a summary or a metrics list to JSON text."""
    if isinstance(payload, TechniqueSummary):
        data = summary_to_dict(payload)
    else:
        data = [asdict(row) for row in payload]
    return json.dumps(data, indent=indent)


def write_csv(path: str, results: Iterable[SimulationResult]) -> None:
    """Write simulation results to a CSV file."""
    with open(path, "w", newline="") as handle:
        handle.write(results_to_csv(results))
