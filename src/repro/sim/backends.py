"""Sweep execution backends behind the :class:`SweepBackend` interface.

:meth:`repro.sim.runner.BenchmarkRunner.sweep` plans a sweep -- the
(benchmark, seed) grid, checkpoint state, retry budget -- and hands the
pending work to a backend as a :class:`SweepJob`.  A backend's only
contract is :meth:`SweepBackend.execute`: run every pending cell (or
park it as a :class:`~repro.sim.runner.FailureReport`), honouring the
job's drain flag, circuit breaker, checkpointing and incident log.  All
backends must be *interchangeable*: the same sweep produces byte-
identical aggregates, failures, and checkpoint files on every backend,
and a checkpoint written by one backend resumes on any other.

Three backends exist:

* :class:`SequentialBackend` -- cells run in-process, in grid order;
* :class:`ProcessPoolBackend` -- cells fan out to a supervised local
  ``ProcessPoolExecutor`` (heartbeats, stale-kill, pool rebuild);
* :class:`repro.dist.backend.DistributedBackend` -- cells are leased to
  independent worker subprocesses over a socket protocol (registered
  here lazily to keep ``repro.sim`` import-light).

Selection is by ``ResilienceConfig.backend``: ``"auto"`` (the default)
keeps the historical behaviour -- ``workers > 1`` means the process
pool, otherwise sequential -- while ``"sequential"``, ``"pool"`` and
``"dist"`` force a specific backend.
"""

from __future__ import annotations

import abc
import contextlib
import pickle
import signal
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from concurrent.futures import FIRST_COMPLETED, wait as futures_wait
from concurrent.futures.process import BrokenProcessPool

from repro.errors import ConfigurationError, SweepInterrupted
from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.log import warn_once
from repro.sim.metrics import RelativeMetrics

__all__ = [
    "SweepBackend",
    "SweepJob",
    "SequentialBackend",
    "ProcessPoolBackend",
    "select_backend",
    "BACKEND_CHOICES",
]

#: Valid values of ``ResilienceConfig.backend``.
BACKEND_CHOICES = ("auto", "sequential", "pool", "dist")

Cell = Tuple[str, Optional[int]]


@dataclass
class SweepJob:
    """Everything one sweep execution needs, bundled for a backend.

    The mutable mappings (``results``, ``failure_map``, ``cells``,
    ``timings``) belong to the caller -- :meth:`BenchmarkRunner.sweep`
    aggregates from them after ``execute`` returns -- so backends write
    results through the :meth:`record_success` / :meth:`record_failure`
    helpers, which also keep the checkpoint and progress callback
    consistent across backends.
    """

    runner: "object"  # BenchmarkRunner (untyped to avoid a module cycle)
    grid: Sequence[Cell]
    pending: Sequence[Cell]
    ordinal: int
    technique: str
    factory: Callable
    resilience: "object"  # ResilienceConfig
    progress: Optional[Callable[[str, RelativeMetrics], None]]
    cells: Dict[str, dict]
    results: Dict[Cell, RelativeMetrics]
    failure_map: Dict[Cell, "object"]
    timings: Dict[str, float]
    drain: "object"  # _DrainFlag
    incidents: List["object"] = field(default_factory=list)
    #: failure counterpart of ``progress``: called as ``on_failure(cell,
    #: report)`` whenever a cell is parked as a FailureReport, so callers
    #: streaming sweep progress (the serving tier) see failed cells too.
    on_failure: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Shared result/failure/drain bookkeeping
    # ------------------------------------------------------------------
    def record_success(self, cell: Cell, metrics: RelativeMetrics) -> None:
        """Store a completed cell: results, checkpoint, progress."""
        from repro.sim.runner import _cell_key

        name, seed = cell
        self.results[cell] = metrics
        self.cells[
            _cell_key(self.ordinal, name, self.technique, seed)
        ] = asdict(metrics)
        t_io = time.perf_counter()
        self.runner._save_cells(self.resilience)
        self.timings["checkpoint_io"] += time.perf_counter() - t_io
        if self.progress is not None:
            self.progress(name, metrics)

    def record_failure(self, cell: Cell, failure) -> None:
        self.failure_map[cell] = failure
        if self.on_failure is not None:
            self.on_failure(cell, failure)

    def pending_after(self) -> List[Cell]:
        """Cells still unaccounted for (used by drain summaries)."""
        return [
            c for c in self.grid
            if c not in self.results and c not in self.failure_map
        ]

    def drain_now(self) -> SweepInterrupted:
        """Flush the checkpoint, write the shutdown summary, and return
        the :class:`SweepInterrupted` for the backend to raise."""
        return self.runner._drain_now(
            self.resilience, self.technique, self.drain,
            len(self.results), self.pending_after(),
        )


class _CellQueue:
    """Circuit-breaker-aware dispatch queue shared by fan-out backends.

    Mirrors the sequential circuit-breaker rule exactly: the first
    *pending* cell of each benchmark (grid order) is its probe; the
    benchmark's remaining cells are held until the probe resolves, then
    released (probe completed, or lost its worker) or parked as
    ``CircuitOpen`` failures (probe exhausted its retry budget).  The
    rule depends only on grid order, so every backend parks the
    identical set of cells.
    """

    def __init__(self, job: SweepJob, circuit_breaker: bool):
        self.job = job
        self.queue: deque = deque()
        self.held: Dict[str, List[Cell]] = {}
        self.probes: Dict[Cell, str] = {}
        if circuit_breaker:
            seen: set = set()
            for cell in job.pending:
                name = cell[0]
                if name in seen:
                    self.held.setdefault(name, []).append(cell)
                else:
                    seen.add(name)
                    self.probes[cell] = name
                    self.queue.append(cell)
        else:
            self.queue.extend(job.pending)

    def __bool__(self) -> bool:
        return bool(self.queue or any(self.held.values()))

    def release_probe(self, cell: Cell, run_failed: bool) -> None:
        """Unblock (or park) the cells held behind a probe."""
        from repro.sim.runner import _circuit_open_report

        name = self.probes.pop(cell, None)
        if name is None:
            return
        tracer = obs_trace.active_tracer()
        if run_failed and tracer is not None:
            tracer.instant(
                "circuit_breaker_trip",
                cat=obs_trace.CAT_SUPERVISION,
                args={"benchmark": name, "technique": self.job.technique},
            )
        for follower in self.held.pop(name, []):
            if run_failed:
                self.job.record_failure(
                    follower,
                    _circuit_open_report(
                        name, self.job.technique, follower[1]
                    ),
                )
            else:
                self.queue.append(follower)

    def release_all_held(self) -> None:
        """Belt-and-braces: requeue held cells whose probe vanished."""
        for name in list(self.held):
            self.queue.extend(self.held.pop(name))


class SweepBackend(abc.ABC):
    """One way of executing a sweep's pending cells.

    ``name`` labels the backend in traces and metrics; ``workers`` is
    the effective degree of parallelism (1 for sequential), recorded in
    the sweep's ``timings``.
    """

    name: str = "?"
    workers: int = 1

    @abc.abstractmethod
    def execute(self, job: SweepJob) -> None:
        """Run every pending cell of ``job`` (or park it as a failure).

        Must honour ``job.drain`` (raise ``job.drain_now()`` on a drain
        request), record supervision events on ``job.incidents``, and
        leave ``job.results``/``job.failure_map`` covering the grid.
        """


class SequentialBackend(SweepBackend):
    """Run pending cells in-process, in grid order."""

    name = "sequential"
    workers = 1

    def execute(self, job: SweepJob) -> None:
        from repro.sim.runner import _circuit_open_report

        tracer = obs_trace.active_tracer()
        resilience = job.resilience
        open_benchmarks: set = set()
        probed: set = set()
        pending = [
            cell
            for cell in job.grid
            if cell not in job.results and cell not in job.failure_map
        ]
        if len(pending) > 1:
            # Warm the base cache with one lane-batched kernel call; a
            # failed prefetch only costs the optimization (each cell's
            # scalar path reproduces any error under its retry policy).
            try:
                job.runner.prefetch_base_batch(
                    pending,
                    timeout_s=resilience.timeout_s,
                    should_stop=job.drain.is_set,
                )
            except Exception:
                pass
        for name, seed in job.grid:
            cell = (name, seed)
            if cell in job.results:  # resumed from the checkpoint
                if job.progress is not None:
                    job.progress(name, job.results[cell])
                continue
            if cell in job.failure_map:  # parked before a degradation
                continue
            if job.drain.is_set():
                raise job.drain_now()
            if name in open_benchmarks:
                job.record_failure(
                    cell, _circuit_open_report(name, job.technique, seed)
                )
                continue
            is_probe = name not in probed
            probed.add(name)
            metrics, failure = job.runner._run_cell(
                name, job.technique, job.factory, resilience, base_seed=seed
            )
            if failure is not None:
                job.record_failure(cell, failure)
                if is_probe and resilience.circuit_breaker:
                    open_benchmarks.add(name)
                    if tracer is not None:
                        tracer.instant(
                            "circuit_breaker_trip",
                            cat=obs_trace.CAT_SUPERVISION,
                            args={
                                "benchmark": name,
                                "technique": job.technique,
                            },
                        )
                continue
            job.record_success(cell, metrics)


class ProcessPoolBackend(SweepBackend):
    """Run pending cells on a *supervised* local process pool.

    The parent writes the checkpoint as cells complete (completion
    order, but cell-keyed, so the final file is byte-identical to a
    sequential run's) and reports ``progress`` in completion order;
    cached cells are reported first, in grid order.

    Supervision: cells are dispatched incrementally (a bounded window
    rather than all up front).  A dead worker (``BrokenProcessPool`` --
    OOM kill, segfault, SIGKILL) or a hung one (heartbeat older than
    ``heartbeat_stale_s``, killed by the supervisor) triggers a pool
    rebuild; the lost cells are requeued with a per-cell restart budget
    (``max_worker_restarts``) and each event is recorded on the
    summary's ``incidents``.  Cells that keep losing their worker are
    parked as ``WorkerLostError`` failures; the sweep always terminates
    instead of hanging on a poisoned pool.

    A drain request (SIGTERM/SIGINT) stops dispatch, waits up to
    ``drain_deadline_s`` for in-flight cells, kills whatever is still
    running, flushes the checkpoint and raises
    :class:`~repro.errors.SweepInterrupted`.
    """

    name = "pool"

    def __init__(self, workers: int):
        self.workers = workers

    def execute(self, job: SweepJob) -> None:
        from repro.sim import runner as runner_module
        from repro.sim.runner import (
            _cell_key,
            _merge_worker_telemetry,
            _worker_lost_report,
            _worker_run_cell,
        )

        runner = job.runner
        resilience = job.resilience
        workers = self.workers
        tracer = obs_trace.active_tracer()
        registry = obs_metrics.active_registry()
        if job.progress is not None:
            for cell in job.grid:
                if cell in job.results:
                    job.progress(cell[0], job.results[cell])
        spec_blob = pickle.dumps(
            (
                runner.config,
                runner.supply_transform,
                runner.max_base_cache_entries,
                runner._trace_spec(resilience),
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        heartbeat = resilience.heartbeat_stale_s is not None
        executor = runner._ensure_executor(workers, heartbeat=heartbeat)

        cell_queue = _CellQueue(job, resilience.circuit_breaker)
        queue = cell_queue.queue

        inflight: Dict[object, Cell] = {}
        lost_cells: List[Cell] = []
        lost_detail = ""
        lost_counts: Dict[Cell, int] = {}
        # Each rebuild loses at least one in-flight cell, and each cell
        # is parked after max_worker_restarts losses, so this hard cap
        # can only bind if supervision itself misbehaves.
        rebuilds_left = (resilience.max_worker_restarts + 1) * max(
            1, len(job.pending)
        )
        pool_broken = False

        dispatch_ctx = obs_context.current_context()

        def submit(cell):
            name, seed = cell
            if dispatch_ctx is not None and tracer is not None:
                # Open a flow arrow to the worker's cell span; both sides
                # derive the same deterministic cell span id.
                cell_ctx = dispatch_ctx.child(
                    f"cell|{name}|{job.technique}|{seed}"
                )
                tracer.flow_start(cell_ctx.span_id)
            future = executor.submit(
                _worker_run_cell,
                spec_blob,
                job.factory,
                name,
                job.technique,
                seed,
                resilience.timeout_s,
                resilience.max_retries,
                resilience.backoff_base_s,
                resilience.backoff_max_s,
                ctx=None if dispatch_ctx is None else dispatch_ctx.to_dict(),
            )
            inflight[future] = cell

        def record_result(cell, metrics, failure):
            if failure is not None:
                job.record_failure(cell, failure)
                cell_queue.release_probe(cell, run_failed=True)
                return
            job.record_success(cell, metrics)
            cell_queue.release_probe(cell, run_failed=False)

        def abandon_cell(cell, losses, detail):
            job.record_failure(
                cell,
                _worker_lost_report(
                    cell[0], job.technique, cell[1], losses, detail
                ),
            )
            cell_queue.release_probe(cell, run_failed=False)

        def handle_lost_cells():
            """Requeue (or park) cells whose worker died; rebuild the
            pool."""
            nonlocal executor, pool_broken, rebuilds_left, lost_detail
            lost, detail = list(lost_cells), lost_detail
            lost_cells.clear()
            lost_detail = ""
            for cell in lost:
                losses = lost_counts.get(cell, 0) + 1
                lost_counts[cell] = losses
                job.incidents.append(
                    _worker_lost_report(
                        cell[0], job.technique, cell[1], losses, detail
                    )
                )
                if losses > resilience.max_worker_restarts:
                    abandon_cell(
                        cell,
                        losses,
                        f"abandoned after losing its worker {losses}"
                        f" time(s)"
                        f" (budget {resilience.max_worker_restarts});"
                        f" last incident: {detail}",
                    )
                else:
                    queue.appendleft(cell)
            if registry is not None:
                registry.counter(
                    "runner_worker_restarts_total",
                    help="pool rebuilds after a lost or hung worker",
                ).inc()
            if tracer is not None:
                tracer.instant(
                    "pool_rebuild",
                    cat=obs_trace.CAT_SUPERVISION,
                    args={
                        "lost_cells": len(lost),
                        "detail": detail,
                        "rebuilds_left": rebuilds_left - 1,
                    },
                )
            rebuilds_left -= 1
            runner._shutdown_executor()
            pool_broken = False
            if rebuilds_left <= 0:
                # Abandoning a probe releases its held cells into the
                # queue; keep draining until nothing is left anywhere.
                while queue:
                    cell = queue.popleft()
                    abandon_cell(
                        cell, lost_counts.get(cell, 0),
                        "worker-restart budget exhausted for the whole"
                        " sweep",
                    )
            executor = runner._ensure_executor(workers, heartbeat=heartbeat)

        def drain_and_raise():
            deadline = time.monotonic() + resilience.drain_deadline_s
            while inflight and time.monotonic() < deadline:
                done, _ = futures_wait(
                    set(inflight),
                    timeout=runner_module._SUPERVISOR_POLL_S,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    cell = inflight.pop(future)
                    try:
                        metrics, failure, telemetry = future.result()
                    except BaseException:
                        continue  # lost to the drain; --resume recomputes
                    _merge_worker_telemetry(telemetry)
                    if failure is None:
                        name, seed = cell
                        job.results[cell] = metrics
                        job.cells[
                            _cell_key(
                                job.ordinal, name, job.technique, seed
                            )
                        ] = asdict(metrics)
            for future in inflight:
                future.cancel()
            if inflight:  # still running past the deadline: kill the pool
                runner._kill_workers()
            runner._shutdown_executor()
            raise job.drain_now()

        try:
            while queue or inflight or any(cell_queue.held.values()):
                if job.drain.is_set():
                    drain_and_raise()
                if not pool_broken:
                    while queue and len(inflight) < 2 * workers:
                        cell = queue.popleft()
                        try:
                            submit(cell)
                        except BrokenProcessPool as error:
                            # The pool broke between completions;
                            # recover through the same lost-cell path.
                            pool_broken = True
                            lost_cells.append(cell)
                            lost_detail = (
                                f"worker pool broke at dispatch"
                                f" ({type(error).__name__}: {error})"
                            )
                            break
                if not inflight:
                    # Held cells with no live probe would deadlock; the
                    # bookkeeping above always resolves probes, so this
                    # is pure belt-and-braces.
                    if not queue:
                        cell_queue.release_all_held()
                    continue
                done, _ = futures_wait(
                    set(inflight),
                    timeout=runner_module._SUPERVISOR_POLL_S,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    if heartbeat and not pool_broken:
                        stale = runner._stale_worker_pids(
                            resilience.heartbeat_stale_s
                        )
                        for pid in stale:
                            # Killing the worker breaks the pool; the
                            # normal lost-cell path rebuilds and
                            # requeues.
                            if tracer is not None:
                                tracer.instant(
                                    "heartbeat_stale_kill",
                                    cat=obs_trace.CAT_SUPERVISION,
                                    args={"pid": pid},
                                )
                            with contextlib.suppress(OSError):
                                import os

                                os.kill(pid, signal.SIGKILL)
                    continue
                for future in done:
                    cell = inflight.pop(future)
                    try:
                        metrics, failure, telemetry = future.result()
                    except BrokenProcessPool as error:
                        # Hold the lost cell until the broken pool
                        # finishes failing its remaining futures, then
                        # rebuild once.
                        pool_broken = True
                        lost_cells.append(cell)
                        lost_detail = (
                            f"worker process died mid-cell"
                            f" ({type(error).__name__}: {error})"
                        )
                        continue
                    _merge_worker_telemetry(telemetry)
                    record_result(cell, metrics, failure)
                if pool_broken and not inflight:
                    handle_lost_cells()
        except SweepInterrupted:
            raise
        except BaseException:
            # A kill (or a progress-raised abort) must not strand queued
            # work: unstarted cells are cancelled, in-flight results
            # discarded.  The checkpoint holds everything completed so
            # far.
            for future in inflight:
                future.cancel()
            raise


def _spec_is_picklable(runner, factory) -> bool:
    """Whether the cell spec can cross a process boundary."""
    try:
        pickle.dumps(
            (runner.config, runner.supply_transform, factory),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    except Exception as error:
        warn_once(
            f"parallel sweep disabled: cell spec is not picklable"
            f" ({type(error).__name__}: {error}); running sequentially",
            stacklevel=5,
        )
        return False
    return True


def select_backend(runner, resilience, factory, n_pending) -> SweepBackend:
    """The backend this sweep runs on (``ResilienceConfig.backend``).

    ``"auto"`` preserves the historical rule: ``workers > 1`` fans out
    to the process pool, anything else runs sequentially.  Fan-out
    backends degrade to :class:`SequentialBackend` with a warning when
    the cell spec cannot pickle or when at most one cell is pending --
    never silently change results, always run the sweep.
    """
    choice = getattr(resilience, "backend", "auto")
    if choice not in BACKEND_CHOICES:
        raise ConfigurationError(
            f"unknown sweep backend {choice!r}"
            f" (choose from {', '.join(BACKEND_CHOICES)})"
        )
    if choice == "sequential":
        return SequentialBackend()
    if choice == "dist":
        if not _spec_is_picklable(runner, factory):
            return SequentialBackend()
        # Dist workers are fresh interpreters, not forks of this process:
        # anything pickled by reference to __main__ cannot be resolved on
        # the other side, so degrade up front instead of failing every
        # lease.
        main_bound = [
            obj for obj in (factory, runner.supply_transform)
            if getattr(obj, "__module__", None) == "__main__"
            or getattr(type(obj), "__module__", None) == "__main__"
        ]
        if main_bound:
            warn_once(
                "distributed sweep disabled: the controller factory or"
                " supply transform is defined in __main__, which worker"
                " subprocesses cannot import; running sequentially",
                stacklevel=5,
            )
            return SequentialBackend()
        from repro.dist.backend import DistributedBackend

        return DistributedBackend(resilience.workers)
    # "pool" and "auto" share the worker arithmetic.
    if choice == "auto" and resilience.workers <= 1:
        return SequentialBackend()
    workers = min(max(resilience.workers, 1), max(n_pending, 1))
    if workers <= 1 or n_pending <= 1:
        return SequentialBackend()
    if not _spec_is_picklable(runner, factory):
        return SequentialBackend()
    return ProcessPoolBackend(workers)
