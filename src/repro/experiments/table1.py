"""Table 1: system parameters, including the derived resonance quantities.

Echoes the configured architectural and power-distribution parameters and
recomputes every derived row of Table 1 -- resonant frequency, resonance
band in cycles, maximum repetition tolerance and resonant current variation
threshold -- from this repository's own circuit simulation (Section 2.1.3's
procedure), so the paper's values and ours can be compared line by line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (
    PowerSupplyConfig,
    ProcessorConfig,
    TABLE1_PROCESSOR,
    TABLE1_SUPPLY,
)
from repro.power.calibration import CalibrationResult, calibrate
from repro.power.rlc import RLCAnalysis
from repro.experiments.report import render_table

__all__ = ["Table1Result", "run", "PAPER_VALUES"]

#: What the paper's Table 1 states for the derived rows.
PAPER_VALUES = {
    "resonant_frequency_mhz": 100.0,
    "band_min_period_cycles": 84,
    "band_max_period_cycles": 119,
    "max_repetition_tolerance": 4,
    "resonant_current_threshold_amps": 32.0,
}


@dataclass
class Table1Result:
    supply: PowerSupplyConfig
    processor: ProcessorConfig
    calibration: CalibrationResult
    quality_factor: float

    def render(self) -> str:
        supply = self.supply
        processor = self.processor
        cal = self.calibration
        rows = [
            ["issue width", processor.issue_width, "8", ""],
            ["ROB / LSQ entries", processor.rob_entries, "128", ""],
            ["Vdd (V)", supply.vdd_volts, "1.0", ""],
            ["clock (GHz)", supply.clock_hz / 1e9, "10", ""],
            ["max / min current (A)",
             f"{processor.max_current_amps:.0f}/{processor.min_current_amps:.0f}",
             "105/35", ""],
            ["R (uOhm)", supply.resistance_ohms * 1e6, "375", ""],
            ["L (pH)", supply.inductance_henries * 1e12, "1.69", ""],
            ["C (nF)", supply.capacitance_farads * 1e9, "1500", ""],
            ["resonant frequency (MHz)",
             cal.resonant_frequency_hz / 1e6,
             PAPER_VALUES["resonant_frequency_mhz"], "derived"],
            ["quality factor Q", self.quality_factor, "(2.83 in Sec. 5.1.1)",
             "derived"],
            ["resonance band (cycles)",
             f"{cal.band_min_period_cycles}-{cal.band_max_period_cycles}",
             f"{PAPER_VALUES['band_min_period_cycles']}-"
             f"{PAPER_VALUES['band_max_period_cycles']}", "derived"],
            ["max repetition tolerance", cal.max_repetition_tolerance,
             PAPER_VALUES["max_repetition_tolerance"], "calibrated"],
            ["resonant current threshold (A)", cal.threshold_amps,
             PAPER_VALUES["resonant_current_threshold_amps"], "calibrated"],
            ["band-edge tolerable variation (A)",
             cal.band_edge_tolerable_amps, "(procedure of Sec. 2.1.3)",
             "calibrated"],
            ["second-level quiet time (cycles)",
             cal.second_level_response_cycles, "35 (Sec. 5.2)", "calibrated"],
        ]
        return render_table(
            "Table 1: system parameters (ours vs. paper)",
            ["parameter", "ours", "paper", "kind"],
            rows,
        )


def run(
    supply: PowerSupplyConfig = TABLE1_SUPPLY,
    processor: ProcessorConfig = TABLE1_PROCESSOR,
) -> Table1Result:
    """Recompute Table 1's derived rows with our calibration procedure."""
    return Table1Result(
        supply=supply,
        processor=processor,
        calibration=calibrate(supply),
        quality_factor=RLCAnalysis(supply).quality_factor,
    )
