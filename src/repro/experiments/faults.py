"""Fault-injection campaign: detection under degraded and adversarial input.

``ablation-fault-injection`` sweeps the intensity of every fault model in
:mod:`repro.faults` against the resonance-tuning controller and reports the
degradation curve: how *detector coverage* (the fraction of the base run's
violation cycles the technique removes) and the residual violation cycles
decay as the sensing path gets worse.  This is the paper's sensitivity
study (Sections 2.1.4 and 5.2) extended from "imprecise but healthy" to
"broken": stuck readings, dropped samples, burst noise, drift, quantizer
saturation, reporting jitter, and a square-wave resonant attacker at
``f0`` that the core-current sensors cannot even see.

All fault models are seeded, so the campaign is deterministic end to end;
with a :class:`~repro.sim.runner.ResilienceConfig` installed (the
``--checkpoint`` / ``--resume`` CLI flags) a killed campaign resumes at
the cell where it stopped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.config import TABLE1_PROCESSOR
from repro.core import ResonanceTuningController
from repro.faults import (
    BurstNoiseFault,
    DelayJitterFault,
    DriftFault,
    DroppedSampleFault,
    FaultySensor,
    ResonantAttacker,
    SaturationFault,
    SensorFault,
    StuckAtFault,
)
from repro.sim.runner import (
    BenchmarkRunner,
    ResilienceConfig,
    SweepConfig,
    TechniqueSummary,
)
from repro.experiments.report import render_table

__all__ = ["FaultRow", "FaultInjectionResult", "run", "FAULT_KINDS"]

DEFAULT_BENCHMARKS = ("swim", "bzip", "parser")
DEFAULT_INTENSITIES = (0.2, 0.5)

#: peak-to-peak burst-noise amplitude at intensity 1.0, in amps
_BURST_FULL_AMPS = 48.0
#: drift rate at intensity 1.0, in amps per kilocycle
_DRIFT_FULL_AMPS_PER_KCYCLE = 8.0
#: attacker square-wave amplitude at intensity 1.0, in amps
_ATTACK_FULL_AMPS = 24.0


def _sensor_faults(kind: str, intensity: float, n_cycles: int, seed: int):
    """Map one (kind, intensity) cell onto concrete fault parameters."""
    medium = TABLE1_PROCESSOR.medium_current_amps
    if kind == "stuck":
        return [
            StuckAtFault(
                value_amps=medium,
                start_cycle=n_cycles // 4,
                duration_cycles=max(1, int(intensity * n_cycles)),
                seed=seed,
            )
        ]
    if kind == "drop":
        return [DroppedSampleFault(drop_probability=intensity, seed=seed)]
    if kind == "burst":
        return [
            BurstNoiseFault(
                amplitude_pp_amps=intensity * _BURST_FULL_AMPS,
                burst_probability=0.02,
                burst_length_cycles=64,
                seed=seed,
            )
        ]
    if kind == "drift":
        return [
            DriftFault(
                drift_amps_per_kilocycle=intensity * _DRIFT_FULL_AMPS_PER_KCYCLE,
                max_offset_amps=60.0,
                seed=seed,
            )
        ]
    if kind == "saturate":
        maximum = TABLE1_PROCESSOR.max_current_amps
        return [
            SaturationFault(
                full_scale_amps=maximum - intensity * (maximum - medium),
                seed=seed,
            )
        ]
    if kind == "jitter":
        return [
            DelayJitterFault(
                max_extra_delay_cycles=1 + round(intensity * 10),
                jitter_probability=min(1.0, intensity),
                seed=seed,
            )
        ]
    raise KeyError(kind)


#: The sensor-path fault taxonomy the campaign sweeps (label order is
#: render order); the resonant attacker is handled separately because it
#: wraps the power supply, not the sensor.
FAULT_KINDS: Tuple[str, ...] = (
    "stuck", "drop", "burst", "drift", "saturate", "jitter",
)


@dataclass(frozen=True)
class FaultRow:
    """One campaign cell: a fault kind at one intensity."""

    label: str
    kind: str
    intensity: float
    coverage: float
    summary: TechniqueSummary


@dataclass
class FaultInjectionResult:
    """Degradation curves of the tuning technique under injected faults."""

    title: str
    rows: Tuple[FaultRow, ...]
    n_cycles: int

    def row_for(self, label: str) -> FaultRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)

    def render(self) -> str:
        table = []
        for row in self.rows:
            summary = row.summary
            table.append([
                row.label,
                f"{row.intensity:.2f}",
                summary.total_violation_cycles,
                row.coverage,
                summary.avg_slowdown,
                summary.avg_first_level_fraction,
                summary.avg_second_level_fraction,
                len(summary.failures),
            ])
        return render_table(
            f"{self.title} ({self.n_cycles} cycles/benchmark)",
            ["fault", "intensity", "violations", "coverage",
             "avg slowdown", "frac 1st", "frac 2nd", "failures"],
            table,
        )


def _coverage(summary: TechniqueSummary) -> float:
    """Mean fraction of the base run's violation cycles the technique removed.

    A benchmark whose base run never violates contributes full coverage
    (there was nothing to miss).
    """
    scores: List[float] = []
    for metrics in summary.per_benchmark:
        base = metrics.base_violation_fraction
        if base <= 0:
            scores.append(1.0)
        else:
            scores.append(max(0.0, 1.0 - metrics.violation_fraction / base))
    return sum(scores) / len(scores) if scores else 0.0


def _tuning_factory(
    faults_builder: Optional[Callable[[], List[SensorFault]]] = None,
    label: Optional[str] = None,
):
    def build(supply, processor):
        sensor = (
            FaultySensor(faults_builder()) if faults_builder is not None else None
        )
        controller = ResonanceTuningController(supply, processor, sensor=sensor)
        if label is not None:
            # Each faulted variant is its own technique: distinct names keep
            # checkpoint cells (keyed by benchmark|technique|seed) from
            # colliding between variants of one campaign.
            controller.name = f"resonance-tuning[{label}]"
        return controller

    return build


def run(
    n_cycles: int = 20_000,
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    resilience: Optional[ResilienceConfig] = None,
) -> FaultInjectionResult:
    """Sweep every fault kind over ``intensities``; includes a clean row."""
    config = SweepConfig(n_cycles=n_cycles)
    runner = BenchmarkRunner(config, resilience=resilience)
    rows: List[FaultRow] = []

    clean = runner.sweep(_tuning_factory(), benchmarks=benchmarks)
    rows.append(
        FaultRow("clean", "clean", 0.0, _coverage(clean), clean)
    )

    for kind_index, kind in enumerate(FAULT_KINDS):
        for intensity in intensities:
            seed = 7_000 + kind_index
            builder = (
                lambda _k=kind, _i=intensity, _s=seed: _sensor_faults(
                    _k, _i, n_cycles, _s
                )
            )
            label = f"{kind} {intensity:.2f}"
            summary = runner.sweep(
                _tuning_factory(builder, label=label), benchmarks=benchmarks
            )
            rows.append(FaultRow(
                label, kind, intensity, _coverage(summary), summary,
            ))

    # The resonant attacker changes the power supply itself, so base runs
    # must see the same attack: a dedicated runner per intensity.
    for intensity in intensities:
        amplitude = intensity * _ATTACK_FULL_AMPS

        def attack(supply, benchmark, _a=amplitude):
            return ResonantAttacker(supply, amplitude_amps=_a, seed=99)

        attacked = BenchmarkRunner(
            config, resilience=resilience, supply_transform=attack
        )
        label = f"attack {intensity:.2f}"
        summary = attacked.sweep(
            _tuning_factory(label=label), benchmarks=benchmarks
        )
        rows.append(FaultRow(
            label, "attack", intensity, _coverage(summary), summary,
        ))

    return FaultInjectionResult(
        "Fault injection: detector coverage degradation",
        tuple(rows),
        n_cycles,
    )
