"""Figure 5: comparison of the techniques' relative energy-delay.

Six design points, two per technique, as in the paper:

* resonance tuning with initial response times 75 and 100 cycles (A, B);
* the [10] voltage-threshold technique at 20/10/5 and 20/15/3 mV/mV/cycles
  (C, D);
* pipeline damping at relative delta 0.5 and 0.25 (E, F).

The headline claim to reproduce: resonance tuning outperforms both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.sim.runner import SweepConfig
from repro.experiments import table3
from repro.experiments import table4
from repro.experiments import table5
from repro.experiments.report import render_table

__all__ = ["Figure5Result", "run", "DESIGN_POINTS"]

DESIGN_POINTS = (
    ("A", "resonance tuning, 75-cycle initial response"),
    ("B", "resonance tuning, 100-cycle initial response"),
    ("C", "[10], threshold/noise/delay = 20/10/5"),
    ("D", "[10], threshold/noise/delay = 20/15/3"),
    ("E", "damping, relative delta 0.5"),
    ("F", "damping, relative delta 0.25"),
)


@dataclass
class Figure5Result:
    #: (label, description, avg energy-delay, violation cycles remaining)
    energy_delays: Tuple[Tuple[str, str, float, int], ...]
    n_cycles: int

    def value(self, label: str) -> float:
        for point, _, energy_delay, _ in self.energy_delays:
            if point == label:
                return energy_delay
        raise KeyError(label)

    @property
    def tuning_wins(self) -> bool:
        """Does the best tuning point beat every other design point?"""
        best_tuning = min(self.value("A"), self.value("B"))
        others = min(self.value(label) for label in ("C", "D", "E", "F"))
        return best_tuning < others

    @property
    def tuning_wins_realistic(self) -> bool:
        """Does tuning beat the points the paper argues are the fair ones?

        C and D are [10] with realistic sensors; F is damping tightened
        enough to cover the resonance band (Section 5.3.2 argues delta may
        need substantial tightening to guarantee the margins, so E's
        guarantee is not established).
        """
        best_tuning = min(self.value("A"), self.value("B"))
        others = min(self.value(label) for label in ("C", "D", "F"))
        return best_tuning < others

    def to_svg_charts(self) -> dict:
        """SVG renderings keyed by chart name."""
        from repro.experiments.svg import BarChart

        chart = BarChart(
            title="Figure 5: relative energy-delay by design point",
            x_label="average relative energy-delay",
            baseline=1.0,
        )
        for label, description, energy_delay, _ in self.energy_delays:
            chart.add_bar(f"{label}: {description}", energy_delay)
        return {"comparison": chart.render()}

    def render(self) -> str:
        rows = []
        for label, description, energy_delay, violations in self.energy_delays:
            bar = "#" * max(1, round((energy_delay - 1.0) * 100))
            rows.append([label, description, energy_delay, violations, bar])
        table = render_table(
            f"Figure 5: comparison of techniques "
            f"({self.n_cycles} cycles/benchmark)",
            ["pt", "design point", "avg E*D", "viol", "(E*D - 1) x100"],
            rows,
        )
        verdict = (
            "\ntuning beats all design points: "
            + ("YES" if self.tuning_wins else "NO")
            + "; beats realistic alternatives (C, D, F): "
            + ("YES" if self.tuning_wins_realistic else "NO")
        )
        return table + verdict


def run(
    n_cycles: int = 60_000,
    benchmarks: Optional[Sequence[str]] = None,
    sweep_config: Optional[SweepConfig] = None,
) -> Figure5Result:
    """Compose the Figure 5 comparison from the Table 3/4/5 machinery."""
    sweep = sweep_config or SweepConfig(n_cycles=n_cycles)
    tuning = table3.run(
        initial_response_times=(75, 100), benchmarks=benchmarks,
        sweep_config=sweep,
    )
    voltage = table4.run(
        configs=(table4.VTConfig(20, 10, 5), table4.VTConfig(20, 15, 3)),
        benchmarks=benchmarks, sweep_config=sweep,
    )
    damping = table5.run(
        relative_deltas=(0.5, 0.25), benchmarks=benchmarks, sweep_config=sweep,
    )
    descriptions = dict(DESIGN_POINTS)

    def point(label, summary):
        return (
            label,
            descriptions[label],
            summary.avg_energy_delay,
            summary.total_violation_cycles,
        )

    energy_delays = (
        point("A", tuning.summary_for(75)),
        point("B", tuning.summary_for(100)),
        point("C", voltage.summary_for("20/10/5")),
        point("D", voltage.summary_for("20/15/3")),
        point("E", damping.summary_for(0.5)),
        point("F", damping.summary_for(0.25)),
    )
    return Figure5Result(energy_delays=energy_delays, n_cycles=sweep.n_cycles)
