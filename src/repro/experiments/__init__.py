"""One module per table and figure in the paper's evaluation.

Run from the command line::

    python -m repro.experiments table3 --quick
    python -m repro.experiments all

or programmatically via :func:`repro.experiments.registry.run_experiment`.
"""

from repro.experiments import (  # noqa: F401  (re-exported submodules)
    ablations,
    faults,
    figure1,
    figure3,
    figure4,
    figure5,
    persistence,
    report,
    table1,
    table2,
    table3,
    table4,
    table5,
)

__all__ = [
    "ablations",
    "faults",
    "persistence",
    "figure1",
    "figure3",
    "figure4",
    "figure5",
    "report",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
]
