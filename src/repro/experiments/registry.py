"""Registry and CLI for the paper's experiments.

``python -m repro.experiments <id>`` runs one experiment and prints its
rendered table/figure; ``--quick`` shrinks cycle counts and the benchmark
set for a fast sanity pass.  Every table and figure in the paper's
evaluation has an entry.

Resilience flags (``--checkpoint``, ``--resume``, ``--max-retries``,
``--timeout-s``, ``--workers``) build a
:class:`~repro.sim.runner.ResilienceConfig` that :func:`run_experiment`
installs as the process-wide default, so every sweep an experiment
performs -- however deeply it constructs its runners -- checkpoints after
each completed cell, survives flaky ones, and fans cells out to worker
processes when asked.
"""

from __future__ import annotations

import argparse
import difflib
from typing import Callable, Dict, Optional, Sequence

from repro import obs
from repro.errors import SweepInterrupted

from repro.experiments import (
    ablations,
    faults,
    figure1,
    figure3,
    figure4,
    figure5,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.sim import runner as runner_module
from repro.sim.runner import ResilienceConfig

__all__ = ["EXPERIMENTS", "EXTENSIONS", "run_experiment", "main"]

#: Small benchmark subset for --quick runs (violators + quiet apps).
QUICK_BENCHMARKS = ("swim", "bzip", "parser", "mcf", "fma3d", "gzip")
QUICK_CYCLES = 20_000

#: Default checkpoint location when ``--resume`` is given without an
#: explicit ``--checkpoint`` path.
DEFAULT_CHECKPOINT = ".repro-checkpoint.json"


def _run_figure1(quick: bool):
    return figure1.run()


def _run_table1(quick: bool):
    return table1.run()


def _run_figure3(quick: bool):
    return figure3.run()


def _run_figure4(quick: bool):
    # Quick mode scales with the same knob as every other experiment
    # (figure 4 needs a longer window than a sweep cell to catch a
    # violation, hence the factor of two).
    return figure4.run(max_cycles=2 * QUICK_CYCLES if quick else 200_000)


def _run_table2(quick: bool):
    if quick:
        return table2.run(n_cycles=QUICK_CYCLES, benchmarks=QUICK_BENCHMARKS)
    return table2.run()


def _run_table3(quick: bool):
    if quick:
        return table3.run(
            initial_response_times=(75, 100),
            n_cycles=QUICK_CYCLES,
            benchmarks=QUICK_BENCHMARKS,
        )
    return table3.run()


def _run_table4(quick: bool):
    if quick:
        return table4.run(
            configs=(table4.VTConfig(30, 0, 0), table4.VTConfig(20, 15, 3)),
            n_cycles=QUICK_CYCLES,
            benchmarks=QUICK_BENCHMARKS,
        )
    return table4.run()


def _run_table5(quick: bool):
    if quick:
        return table5.run(n_cycles=QUICK_CYCLES, benchmarks=QUICK_BENCHMARKS)
    return table5.run()


def _run_figure5(quick: bool):
    if quick:
        return figure5.run(n_cycles=QUICK_CYCLES, benchmarks=QUICK_BENCHMARKS)
    return figure5.run()


EXPERIMENTS: Dict[str, Callable[[bool], object]] = {
    "figure1": _run_figure1,
    "table1": _run_table1,
    "figure3": _run_figure3,
    "figure4": _run_figure4,
    "table2": _run_table2,
    "table3": _run_table3,
    "table4": _run_table4,
    "table5": _run_table5,
    "figure5": _run_figure5,
}


def _ablation(fn):
    def run(quick: bool):
        if quick:
            return fn(n_cycles=8_000, benchmarks=("swim", "gzip"))
        return fn()
    return run


def _run_fault_injection(quick: bool):
    if quick:
        return faults.run(
            n_cycles=6_000, benchmarks=("swim",), intensities=(0.3,)
        )
    return faults.run()


#: Design-choice evidence beyond the paper's own tables ('all' excludes
#: these; run them by name).
EXTENSIONS: Dict[str, Callable[[bool], object]] = {
    "ablation-two-tier": _ablation(ablations.run_two_tier),
    "ablation-band-coverage": _ablation(ablations.run_band_coverage),
    "ablation-sensing": _ablation(ablations.run_sensing),
    "ablation-detectors": _ablation(ablations.run_detectors),
    "ablation-fault-injection": _run_fault_injection,
}


def run_experiment(
    name: str,
    quick: bool = False,
    resilience: Optional[ResilienceConfig] = None,
):
    """Run one registered experiment or extension; returns its result.

    An unknown name raises :class:`KeyError` with close-match suggestions.
    A :class:`ResilienceConfig` is installed as the sweep default for the
    duration of the run (and restored afterwards), so nested runners honour
    checkpointing, retries and timeouts.
    """
    experiment = EXPERIMENTS.get(name) or EXTENSIONS.get(name)
    if experiment is None:
        known = sorted(EXPERIMENTS) + sorted(EXTENSIONS)
        close = difflib.get_close_matches(name, known, n=3)
        hint = f"; did you mean {' or '.join(map(repr, close))}?" if close else ""
        raise KeyError(f"unknown experiment {name!r}{hint} (choose from {known})")
    previous = runner_module.DEFAULT_RESILIENCE
    runner_module.DEFAULT_RESILIENCE = resilience
    try:
        return experiment(quick)
    finally:
        runner_module.DEFAULT_RESILIENCE = previous


def add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared sweep-resilience flags to a CLI parser."""
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="JSON checkpoint updated after every completed sweep cell",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=f"skip cells already in the checkpoint"
             f" (default path: {DEFAULT_CHECKPOINT})",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="retry a failed cell this many times on re-seeded traces",
    )
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="wall-clock budget per sweep cell in seconds",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sweep cells (1 = sequential, in-process)",
    )
    parser.add_argument(
        "--heartbeat-stale-s",
        type=float,
        default=None,
        metavar="S",
        help="kill and requeue a parallel worker whose cell has not"
             " progressed for S seconds (default: supervision by process"
             " death only)",
    )
    parser.add_argument(
        "--max-worker-restarts",
        type=int,
        default=None,
        metavar="N",
        help="requeue a cell at most N times after losing its worker"
             " before parking it as a failure (default 2)",
    )
    parser.add_argument(
        "--backoff-base-s",
        type=float,
        default=None,
        metavar="S",
        help="exponential backoff before retry attempts: attempt k waits"
             " S * 2^(k-1) seconds with deterministic jitter (default: no"
             " backoff)",
    )
    parser.add_argument(
        "--drain-deadline-s",
        type=float,
        default=None,
        metavar="S",
        help="on SIGTERM/SIGINT, wait S seconds for in-flight cells before"
             " killing the pool and exiting resumable (default 10)",
    )
    parser.add_argument(
        "--no-circuit-breaker",
        action="store_true",
        help="run every (benchmark, seed) cell even after the benchmark's"
             " first cell exhausted its retry budget",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "sequential", "pool", "dist"),
        default=None,
        help="sweep execution backend (default auto: --workers > 1 means"
             " the local process pool, else sequential; dist leases cells"
             " to worker subprocesses over a socket)",
    )
    parser.add_argument(
        "--lease-timeout-s",
        type=float,
        default=None,
        metavar="S",
        help="dist backend: requeue a cell whose worker has not renewed"
             " its lease for S seconds (default 60)",
    )
    parser.add_argument(
        "--quarantine-failures",
        type=int,
        default=None,
        metavar="N",
        help="dist backend: stop leasing to a worker after N attributed"
             " failures (default 3)",
    )
    parser.add_argument(
        "--connect-deadline-s",
        type=float,
        default=None,
        metavar="S",
        help="dist backend: degrade to a local backend if no worker"
             " connects within S seconds (default 10)",
    )
    parser.add_argument(
        "--dist-transport",
        choices=("unix", "tcp"),
        default=None,
        help="dist backend socket transport (default unix)",
    )
    parser.add_argument(
        "--trace-store",
        metavar="PATH",
        default=None,
        help="directory of the content-addressed trace record/replay"
             " store: base-schedule cells record their current trace"
             " once per front end and replay it bit-exactly afterwards"
             " (default: no store, every cell simulates fully)",
    )
    parser.add_argument(
        "--no-replay",
        action="store_true",
        help="disable the trace record/replay layer even when a store"
             " path is configured (every cell runs the full simulation)",
    )


def resilience_from_args(args) -> Optional[ResilienceConfig]:
    """Build the ResilienceConfig the CLI flags describe (None if default).

    Only flags the user actually set become constructor overrides, so
    adding supervision knobs never disturbs the defaults of a config
    built from other flags (and an all-default command line still means
    "no resilience installed").
    """
    checkpoint = args.checkpoint
    if args.resume and checkpoint is None:
        checkpoint = DEFAULT_CHECKPOINT
    overrides = {}
    if checkpoint is not None:
        overrides["checkpoint_path"] = checkpoint
    if args.resume:
        overrides["resume"] = True
    if args.max_retries != 0:
        overrides["max_retries"] = args.max_retries
    if args.timeout_s is not None:
        overrides["timeout_s"] = args.timeout_s
    workers = getattr(args, "workers", 1)
    if workers != 1:
        overrides["workers"] = workers
    if getattr(args, "heartbeat_stale_s", None) is not None:
        overrides["heartbeat_stale_s"] = args.heartbeat_stale_s
    if getattr(args, "max_worker_restarts", None) is not None:
        overrides["max_worker_restarts"] = args.max_worker_restarts
    if getattr(args, "backoff_base_s", None) is not None:
        overrides["backoff_base_s"] = args.backoff_base_s
    if getattr(args, "drain_deadline_s", None) is not None:
        overrides["drain_deadline_s"] = args.drain_deadline_s
    if getattr(args, "no_circuit_breaker", False):
        overrides["circuit_breaker"] = False
    if getattr(args, "backend", None) is not None:
        overrides["backend"] = args.backend
    if getattr(args, "lease_timeout_s", None) is not None:
        overrides["lease_timeout_s"] = args.lease_timeout_s
    if getattr(args, "quarantine_failures", None) is not None:
        overrides["quarantine_failures"] = args.quarantine_failures
    if getattr(args, "connect_deadline_s", None) is not None:
        overrides["connect_deadline_s"] = args.connect_deadline_s
    if getattr(args, "dist_transport", None) is not None:
        overrides["dist_transport"] = args.dist_transport
    if getattr(args, "trace_store", None) is not None:
        overrides["trace_store_path"] = args.trace_store
    if getattr(args, "no_replay", False):
        overrides["replay"] = False
    if not overrides:
        return None
    return ResilienceConfig(**overrides)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + sorted(EXTENSIONS) + ["all"],
        help="experiment ids (or 'all' for the paper's artifacts)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced cycles and benchmark subset for a fast pass",
    )
    add_resilience_flags(parser)
    obs.add_observability_flags(parser)
    args = parser.parse_args(argv)
    observing = obs.configure_from_args(args)
    logger = obs.get_logger("experiments")
    resilience = resilience_from_args(args)
    names = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    try:
        for name in names:
            try:
                result = run_experiment(
                    name, quick=args.quick, resilience=resilience
                )
            except SweepInterrupted as stop:
                logger.warning("%s: %s", name, stop)
                return stop.exit_code
            print(result.render())
            print()
        return 0
    finally:
        if observing:
            for path in obs.finalize(metadata={"experiments": list(names)}):
                logger.info("observability artifact written: %s", path)
