"""Registry and CLI for the paper's experiments.

``python -m repro.experiments <id>`` runs one experiment and prints its
rendered table/figure; ``--quick`` shrinks cycle counts and the benchmark
set for a fast sanity pass.  Every table and figure in the paper's
evaluation has an entry.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, Optional, Sequence

from repro.experiments import (
    ablations,
    figure1,
    figure3,
    figure4,
    figure5,
    table1,
    table2,
    table3,
    table4,
    table5,
)

__all__ = ["EXPERIMENTS", "EXTENSIONS", "run_experiment", "main"]

#: Small benchmark subset for --quick runs (violators + quiet apps).
QUICK_BENCHMARKS = ("swim", "bzip", "parser", "mcf", "fma3d", "gzip")
QUICK_CYCLES = 20_000


def _run_figure1(quick: bool):
    return figure1.run()


def _run_table1(quick: bool):
    return table1.run()


def _run_figure3(quick: bool):
    return figure3.run()


def _run_figure4(quick: bool):
    return figure4.run(max_cycles=40_000 if quick else 200_000)


def _run_table2(quick: bool):
    if quick:
        return table2.run(n_cycles=QUICK_CYCLES, benchmarks=QUICK_BENCHMARKS)
    return table2.run()


def _run_table3(quick: bool):
    if quick:
        return table3.run(
            initial_response_times=(75, 100),
            n_cycles=QUICK_CYCLES,
            benchmarks=QUICK_BENCHMARKS,
        )
    return table3.run()


def _run_table4(quick: bool):
    if quick:
        return table4.run(
            configs=(table4.VTConfig(30, 0, 0), table4.VTConfig(20, 15, 3)),
            n_cycles=QUICK_CYCLES,
            benchmarks=QUICK_BENCHMARKS,
        )
    return table4.run()


def _run_table5(quick: bool):
    if quick:
        return table5.run(n_cycles=QUICK_CYCLES, benchmarks=QUICK_BENCHMARKS)
    return table5.run()


def _run_figure5(quick: bool):
    if quick:
        return figure5.run(n_cycles=QUICK_CYCLES, benchmarks=QUICK_BENCHMARKS)
    return figure5.run()


EXPERIMENTS: Dict[str, Callable[[bool], object]] = {
    "figure1": _run_figure1,
    "table1": _run_table1,
    "figure3": _run_figure3,
    "figure4": _run_figure4,
    "table2": _run_table2,
    "table3": _run_table3,
    "table4": _run_table4,
    "table5": _run_table5,
    "figure5": _run_figure5,
}


def _ablation(fn):
    def run(quick: bool):
        if quick:
            return fn(n_cycles=8_000, benchmarks=("swim", "gzip"))
        return fn()
    return run


#: Design-choice evidence beyond the paper's own tables ('all' excludes
#: these; run them by name).
EXTENSIONS: Dict[str, Callable[[bool], object]] = {
    "ablation-two-tier": _ablation(ablations.run_two_tier),
    "ablation-band-coverage": _ablation(ablations.run_band_coverage),
    "ablation-sensing": _ablation(ablations.run_sensing),
    "ablation-detectors": _ablation(ablations.run_detectors),
}


def run_experiment(name: str, quick: bool = False):
    """Run one registered experiment or extension; returns its result."""
    runner = EXPERIMENTS.get(name) or EXTENSIONS.get(name)
    if runner is None:
        raise KeyError(
            f"unknown experiment {name!r}; choose from"
            f" {sorted(EXPERIMENTS) + sorted(EXTENSIONS)}"
        )
    return runner(quick)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + sorted(EXTENSIONS) + ["all"],
        help="experiment ids (or 'all' for the paper's artifacts)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced cycles and benchmark subset for a fast pass",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    for name in names:
        result = run_experiment(name, quick=args.quick)
        print(result.render())
        print()
    return 0
