"""Ablation experiments (design-choice evidence beyond the paper's tables).

Each function mirrors one of the ablation benches in ``benchmarks/`` as a
first-class, CLI-runnable experiment:

* :func:`run_two_tier` -- both response tiers vs each tier alone;
* :func:`run_band_coverage` -- band-wide vs single-frequency detection;
* :func:`run_sensing` -- sensor quantization and response delay;
* :func:`run_detectors` -- quarter-period vs wavelet (dyadic) detection.

Invoke with ``python -m repro.experiments ablation-two-tier`` etc., or via
``python -m repro experiment ablation-sensing``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence, Tuple

from repro.config import TABLE1_SUPPLY, TABLE1_TUNING
from repro.core import (
    CurrentSensor,
    ResonanceDetector,
    ResonanceTuningController,
    WaveletDetector,
)
from repro.power.rlc import RLCAnalysis
from repro.sim.runner import BenchmarkRunner, SweepConfig, TechniqueSummary
from repro.experiments.report import render_table

__all__ = [
    "AblationResult",
    "run_two_tier",
    "run_band_coverage",
    "run_sensing",
    "run_detectors",
]

VIOLATORS = ("swim", "bzip", "parser", "lucas")
MIXED = ("swim", "bzip", "parser", "gzip")


@dataclass
class AblationResult:
    """Variant label -> technique summary, with a rendered comparison."""

    title: str
    summaries: Tuple[Tuple[str, TechniqueSummary], ...]
    n_cycles: int

    def summary_for(self, label: str) -> TechniqueSummary:
        for name, summary in self.summaries:
            if name == label:
                return summary
        raise KeyError(label)

    def render(self) -> str:
        rows = []
        for label, summary in self.summaries:
            rows.append([
                label,
                summary.total_violation_cycles,
                summary.avg_slowdown,
                summary.avg_energy_delay,
                summary.avg_first_level_fraction,
                summary.avg_second_level_fraction,
            ])
        return render_table(
            f"{self.title} ({self.n_cycles} cycles/benchmark)",
            ["variant", "violations", "avg slowdown", "avg E*D",
             "frac 1st", "frac 2nd"],
            rows,
        )


def _runner(n_cycles: int) -> BenchmarkRunner:
    return BenchmarkRunner(SweepConfig(n_cycles=n_cycles))


def run_two_tier(
    n_cycles: int = 60_000, benchmarks: Sequence[str] = VIOLATORS
) -> AblationResult:
    """Both tiers vs first-only vs second-only (Section 3.2's design)."""
    runner = _runner(n_cycles)
    variants = (
        ("both", dict(enable_first_level=True, enable_second_level=True)),
        ("first-only", dict(enable_first_level=True, enable_second_level=False)),
        ("second-only", dict(enable_first_level=False, enable_second_level=True)),
    )
    summaries = tuple(
        (label, runner.sweep(
            lambda s, p, _sw=switches: ResonanceTuningController(s, p, **_sw),
            benchmarks=benchmarks,
        ))
        for label, switches in variants
    )
    return AblationResult("Ablation: two-tier response", summaries, n_cycles)


def _detector_factory(half_periods, detector_cls=ResonanceDetector):
    def build(supply, processor):
        detector = detector_cls(
            half_periods,
            TABLE1_TUNING.resonant_current_threshold_amps,
            TABLE1_TUNING.max_repetition_tolerance,
        )
        return ResonanceTuningController(supply, processor, detector=detector)

    return build


def run_band_coverage(
    n_cycles: int = 20_000, benchmarks: Sequence[str] = VIOLATORS
) -> AblationResult:
    """Band-wide vs single-frequency detection (Section 3.1.3)."""
    runner = _runner(n_cycles)
    band = RLCAnalysis(TABLE1_SUPPLY).band
    summaries = (
        ("band-wide",
         runner.sweep(_detector_factory(band.half_periods), benchmarks=benchmarks)),
        ("single-frequency",
         runner.sweep(
             _detector_factory([band.half_periods[len(band.half_periods) // 2]]),
             benchmarks=benchmarks,
         )),
    )
    return AblationResult("Ablation: detection band coverage", summaries, n_cycles)


def run_sensing(
    n_cycles: int = 20_000,
    benchmarks: Sequence[str] = MIXED,
    quanta: Sequence[float] = (1.0, 4.0, 8.0),
    delays: Sequence[int] = (0, 5),
) -> AblationResult:
    """Sensor coarseness and response delay (Sections 2.1.4 and 5.2)."""
    runner = _runner(n_cycles)
    summaries = []
    for quantum in quanta:
        summaries.append((
            f"quantum {quantum:g} A",
            runner.sweep(
                lambda s, p, _q=quantum: ResonanceTuningController(
                    s, p, sensor=CurrentSensor(quantum_amps=_q)
                ),
                benchmarks=benchmarks,
            ),
        ))
    for delay in delays:
        tuning = replace(TABLE1_TUNING, response_delay_cycles=delay)
        summaries.append((
            f"delay {delay} cycles",
            runner.sweep(
                lambda s, p, _t=tuning: ResonanceTuningController(s, p, _t),
                benchmarks=benchmarks,
            ),
        ))
    return AblationResult(
        "Ablation: sensing coarseness and delay", tuple(summaries), n_cycles
    )


def run_detectors(
    n_cycles: int = 20_000, benchmarks: Sequence[str] = MIXED
) -> AblationResult:
    """Quarter-period detection vs the wavelet alternative (ref [11])."""
    runner = _runner(n_cycles)
    band = RLCAnalysis(TABLE1_SUPPLY).band
    summaries = (
        ("quarter-period (9 adders)",
         runner.sweep(_detector_factory(band.half_periods), benchmarks=benchmarks)),
        ("wavelet dyadic (2 adders)",
         runner.sweep(
             _detector_factory(band.half_periods, WaveletDetector),
             benchmarks=benchmarks,
         )),
    )
    return AblationResult("Ablation: detector structure", summaries, n_cycles)
