"""Entry point: ``python -m repro.experiments <id> [--quick]``."""

import sys

from repro.experiments.registry import main

if __name__ == "__main__":
    sys.exit(main())
