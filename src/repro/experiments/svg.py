"""Minimal SVG chart writer for the figure experiments.

No plotting library is available offline, so this module hand-renders the
two chart kinds the paper's figures need: line charts (voltage/current/
event-count series, impedance curves) and horizontal bar charts (Figure 5).
The output is deliberately plain: axes, ticks, one polyline per series, a
small legend.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["LineChart", "BarChart"]

_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e")


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e6:
        return f"{value / 1e6:.3g}M"
    if abs(value) >= 1e3:
        return f"{value / 1e3:.3g}k"
    if abs(value) < 0.01:
        return f"{value:.1e}"
    return f"{value:.3g}"


def _ticks(low: float, high: float, count: int = 5) -> List[float]:
    if high <= low:
        high = low + 1.0
    step = (high - low) / (count - 1)
    return [low + step * i for i in range(count)]


@dataclass
class LineChart:
    """A multi-series line chart with shared x values per series."""

    title: str
    x_label: str = ""
    y_label: str = ""
    width: int = 720
    height: int = 320
    series: List[Tuple[str, Sequence[float], Sequence[float]]] = field(
        default_factory=list
    )
    #: optional horizontal guide lines (e.g. the +/- noise margin)
    guides: List[Tuple[str, float]] = field(default_factory=list)
    #: optional vertical guide lines (e.g. the resonance band edges)
    vguides: List[Tuple[str, float]] = field(default_factory=list)

    def add_series(
        self, label: str, x: Sequence[float], y: Sequence[float]
    ) -> "LineChart":
        if len(x) != len(y):
            raise ConfigurationError("series x and y must have equal length")
        if len(x) == 0:
            raise ConfigurationError("series must not be empty")
        self.series.append((label, list(x), list(y)))
        return self

    def add_guide(self, label: str, y_value: float) -> "LineChart":
        self.guides.append((label, y_value))
        return self

    def add_vertical_guide(self, label: str, x_value: float) -> "LineChart":
        self.vguides.append((label, x_value))
        return self

    # ------------------------------------------------------------------
    def render(self) -> str:
        if not self.series:
            raise ConfigurationError("chart has no series")
        margin_left, margin_right = 64, 16
        margin_top, margin_bottom = 36, 44
        plot_w = self.width - margin_left - margin_right
        plot_h = self.height - margin_top - margin_bottom

        xs = [value for _, x, _ in self.series for value in x]
        xs += [x for _, x in self.vguides]
        ys = [value for _, _, y in self.series for value in y]
        ys += [y for _, y in self.guides]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        pad = 0.05 * (y_hi - y_lo)
        y_lo -= pad
        y_hi += pad

        def sx(value: float) -> float:
            return margin_left + plot_w * (value - x_lo) / (x_hi - x_lo)

        def sy(value: float) -> float:
            return margin_top + plot_h * (1.0 - (value - y_lo) / (y_hi - y_lo))

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}"'
            f' height="{self.height}" font-family="sans-serif" font-size="11">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2}" y="18" text-anchor="middle"'
            f' font-size="14">{html.escape(self.title)}</text>',
            f'<rect x="{margin_left}" y="{margin_top}" width="{plot_w}"'
            f' height="{plot_h}" fill="none" stroke="#888"/>',
        ]
        for tick in _ticks(x_lo, x_hi):
            x = sx(tick)
            parts.append(
                f'<line x1="{x:.1f}" y1="{margin_top + plot_h}" x2="{x:.1f}"'
                f' y2="{margin_top + plot_h + 4}" stroke="#444"/>'
            )
            parts.append(
                f'<text x="{x:.1f}" y="{margin_top + plot_h + 16}"'
                f' text-anchor="middle">{_format_tick(tick)}</text>'
            )
        for tick in _ticks(y_lo, y_hi):
            y = sy(tick)
            parts.append(
                f'<line x1="{margin_left - 4}" y1="{y:.1f}"'
                f' x2="{margin_left}" y2="{y:.1f}" stroke="#444"/>'
            )
            parts.append(
                f'<text x="{margin_left - 8}" y="{y + 4:.1f}"'
                f' text-anchor="end">{_format_tick(tick)}</text>'
            )
        if self.x_label:
            parts.append(
                f'<text x="{margin_left + plot_w / 2}" y="{self.height - 8}"'
                f' text-anchor="middle">{html.escape(self.x_label)}</text>'
            )
        if self.y_label:
            cx, cy = 14, margin_top + plot_h / 2
            parts.append(
                f'<text x="{cx}" y="{cy}" text-anchor="middle"'
                f' transform="rotate(-90 {cx} {cy})">'
                f"{html.escape(self.y_label)}</text>"
            )
        for label, y_value in self.guides:
            y = sy(y_value)
            parts.append(
                f'<line x1="{margin_left}" y1="{y:.1f}"'
                f' x2="{margin_left + plot_w}" y2="{y:.1f}"'
                f' stroke="#999" stroke-dasharray="5,4"/>'
            )
            parts.append(
                f'<text x="{margin_left + plot_w - 4}" y="{y - 4:.1f}"'
                f' text-anchor="end" fill="#777">{html.escape(label)}</text>'
            )
        for label, x_value in self.vguides:
            x = sx(x_value)
            parts.append(
                f'<line x1="{x:.1f}" y1="{margin_top}" x2="{x:.1f}"'
                f' y2="{margin_top + plot_h}" stroke="#999"'
                f' stroke-dasharray="5,4"/>'
            )
            parts.append(
                f'<text x="{x + 3:.1f}" y="{margin_top + 12}"'
                f' fill="#777">{html.escape(label)}</text>'
            )
        for index, (label, x, y) in enumerate(self.series):
            color = _COLORS[index % len(_COLORS)]
            points = " ".join(
                f"{sx(xv):.1f},{sy(yv):.1f}" for xv, yv in zip(x, y)
            )
            parts.append(
                f'<polyline points="{points}" fill="none" stroke="{color}"'
                f' stroke-width="1.4"/>'
            )
            legend_y = margin_top + 14 * index + 4
            parts.append(
                f'<line x1="{margin_left + 8}" y1="{legend_y}"'
                f' x2="{margin_left + 28}" y2="{legend_y}" stroke="{color}"'
                f' stroke-width="2"/>'
            )
            parts.append(
                f'<text x="{margin_left + 33}" y="{legend_y + 4}">'
                f"{html.escape(label)}</text>"
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.render())


@dataclass
class BarChart:
    """A horizontal bar chart (Figure 5's energy-delay comparison)."""

    title: str
    x_label: str = ""
    width: int = 720
    bar_height: int = 26
    baseline: float = 0.0
    bars: List[Tuple[str, float]] = field(default_factory=list)

    def add_bar(self, label: str, value: float) -> "BarChart":
        self.bars.append((label, value))
        return self

    def render(self) -> str:
        if not self.bars:
            raise ConfigurationError("chart has no bars")
        margin_left, margin_right = 260, 70
        margin_top, margin_bottom = 36, 30
        plot_w = self.width - margin_left - margin_right
        height = margin_top + margin_bottom + self.bar_height * len(self.bars)
        high = max(value for _, value in self.bars)
        low = min(self.baseline, min(value for _, value in self.bars))
        span = (high - low) or 1.0

        def sx(value: float) -> float:
            return margin_left + plot_w * (value - low) / span

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}"'
            f' height="{height}" font-family="sans-serif" font-size="11">',
            f'<rect width="{self.width}" height="{height}" fill="white"/>',
            f'<text x="{self.width / 2}" y="18" text-anchor="middle"'
            f' font-size="14">{html.escape(self.title)}</text>',
        ]
        for index, (label, value) in enumerate(self.bars):
            y = margin_top + index * self.bar_height
            color = _COLORS[index % len(_COLORS)]
            x0 = sx(max(self.baseline, low))
            x1 = sx(value)
            parts.append(
                f'<rect x="{min(x0, x1):.1f}" y="{y + 4}"'
                f' width="{abs(x1 - x0):.1f}" height="{self.bar_height - 8}"'
                f' fill="{color}" fill-opacity="0.8"/>'
            )
            parts.append(
                f'<text x="{margin_left - 6}" y="{y + self.bar_height / 2 + 4}"'
                f' text-anchor="end">{html.escape(label)}</text>'
            )
            parts.append(
                f'<text x="{x1 + 5:.1f}" y="{y + self.bar_height / 2 + 4}">'
                f"{value:.3f}</text>"
            )
        if self.x_label:
            parts.append(
                f'<text x="{margin_left + plot_w / 2}" y="{height - 8}"'
                f' text-anchor="middle">{html.escape(self.x_label)}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.render())
