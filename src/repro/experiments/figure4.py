"""Figure 4: voltage, current and resonant event count in *parser*.

Runs the synthetic *parser* workload on the base processor, finds a
noise-margin violation, and reports the 400-cycle window around it: the
supply-voltage deviation, the core current, and the resonant event count --
demonstrating the paper's point that the count gives advance warning (count
2 roughly 150 cycles before the violation, count 4 right at it) without
fast or precise sensors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.config import (
    PowerSupplyConfig,
    ProcessorConfig,
    TABLE1_PROCESSOR,
    TABLE1_SUPPLY,
    TuningConfig,
)
from repro.core.detector import ResonanceDetector
from repro.core.sensor import CurrentSensor
from repro.power.rlc import RLCAnalysis
from repro.power.supply import PowerSupply
from repro.uarch.processor import Processor
from repro.uarch.workloads import SPEC2K
from repro.experiments.report import ascii_series, render_table

__all__ = ["Figure4Result", "run"]


@dataclass
class Figure4Result:
    benchmark: str
    window_start_cycle: int
    violation_cycle: Optional[int]
    currents: np.ndarray
    voltages: np.ndarray
    event_counts: np.ndarray
    advance_warning_cycles: Dict[int, int]   # count -> cycles before violation

    def to_svg_charts(self) -> dict:
        """SVG renderings keyed by chart name."""
        from repro.experiments.svg import LineChart

        start = self.window_start_cycle
        cycles = list(range(start, start + len(self.voltages)))
        voltage = LineChart(
            title=f"Figure 4: voltage deviation in {self.benchmark}",
            x_label="cycle", y_label="deviation (mV)",
        )
        voltage.add_series("voltage", cycles, [v * 1e3 for v in self.voltages])
        voltage.add_guide("+margin", 50.0)
        voltage.add_guide("-margin", -50.0)
        current = LineChart(
            title=f"Figure 4: core current in {self.benchmark}",
            x_label="cycle", y_label="current (A)",
        )
        current.add_series("current", cycles, list(self.currents))
        count = LineChart(
            title=f"Figure 4: resonant event count in {self.benchmark}",
            x_label="cycle", y_label="count",
        )
        count.add_series(
            "event count", cycles, [float(c) for c in self.event_counts]
        )
        return {
            "voltage": voltage.render(),
            "current": current.render(),
            "count": count.render(),
        }

    def render(self) -> str:
        rows = [["violation cycle (absolute)", self.violation_cycle]]
        for count in sorted(self.advance_warning_cycles):
            rows.append(
                [f"count {count} reached (cycles before violation)",
                 self.advance_warning_cycles[count]]
            )
        table = render_table(
            f"Figure 4: voltage and current variation in {self.benchmark}",
            ["observation", "value"], rows,
        )
        volt = ascii_series(self.voltages * 1e3, label="voltage deviation (mV)")
        curr = ascii_series(self.currents, label="core current (A)")
        count = ascii_series(
            self.event_counts.astype(float), label="resonant event count"
        )
        return f"{table}\n\n{volt}\n\n{curr}\n\n{count}"


def _build_start(counts, onset: int) -> int:
    """First cycle of the count build-up that led to the violation."""
    history = counts[: onset + 1]
    quiet = np.nonzero(history < 2)[0]
    return int(quiet[-1]) + 1 if len(quiet) else 0


def _most_illustrative(violation_onsets, counts) -> Optional[int]:
    """Pick the violation whose count build-up gives the longest warning."""
    best = None
    best_score = -1
    for onset in violation_onsets:
        start = _build_start(counts, onset)
        lookback = counts[max(0, onset - 300) : onset + 1]
        score = (onset - start) * 10 + int(lookback.max())
        if score > best_score:
            best_score = score
            best = onset
    return best


def run(
    benchmark: str = "parser",
    supply_config: PowerSupplyConfig = TABLE1_SUPPLY,
    processor_config: ProcessorConfig = TABLE1_PROCESSOR,
    max_cycles: int = 200_000,
    window: int = 400,
    tuning: Optional[TuningConfig] = None,
) -> Figure4Result:
    """Find and report a violation window in the (base) benchmark run."""
    tuning = tuning or TuningConfig()
    analysis = RLCAnalysis(supply_config)
    processor = Processor.from_profile(
        SPEC2K[benchmark],
        n_instructions=int(max_cycles * 4.5),
        config=processor_config,
        supply_config=supply_config,
    )
    supply = PowerSupply(
        supply_config, initial_current=processor_config.min_current_amps
    )
    detector = ResonanceDetector(
        analysis.band.half_periods,
        tuning.resonant_current_threshold_amps,
        tuning.max_repetition_tolerance,
    )
    sensor = CurrentSensor()

    currents = np.zeros(max_cycles)
    voltages = np.zeros(max_cycles)
    counts = np.zeros(max_cycles, dtype=int)
    margin = supply_config.noise_margin_volts
    warmup = 2_000
    violation_onsets = []
    in_violation = False

    cycle = 0
    for cycle in range(max_cycles):
        stats = processor.step()
        voltage = supply.step(stats.current_amps)
        detector.observe(cycle, sensor.read(stats.current_amps))
        currents[cycle] = stats.current_amps
        voltages[cycle] = voltage
        counts[cycle] = detector.current_count(cycle)
        violated = abs(voltage) > margin
        if violated and not in_violation and cycle > warmup:
            violation_onsets.append(cycle)
        in_violation = violated
        # A handful of violation instances is enough to pick the most
        # illustrative window (the paper likewise shows one chosen sample).
        if len(violation_onsets) >= 12 and cycle >= violation_onsets[-1] + window:
            break
    executed = cycle + 1

    violation_cycle = _most_illustrative(violation_onsets, counts)

    if violation_cycle is None:
        start = max(0, executed - window)
    else:
        start = max(0, violation_cycle - 3 * window // 4)
    stop = min(executed, start + window)

    warnings: Dict[int, int] = {}
    if violation_cycle is not None:
        # The build-up that caused this violation starts where the count was
        # last below 2; warnings are measured within that build-up only.
        history = counts[: violation_cycle + 1]
        build_start = _build_start(counts, violation_cycle)
        for count in (2, 3, 4):
            reached = np.nonzero(history[build_start:] >= count)[0]
            if len(reached):
                warnings[count] = int(
                    violation_cycle - (build_start + reached[0])
                )

    return Figure4Result(
        benchmark=benchmark,
        window_start_cycle=start,
        violation_cycle=violation_cycle,
        currents=currents[start:stop],
        voltages=voltages[start:stop],
        event_counts=counts[start:stop],
        advance_warning_cycles=warnings,
    )
