"""Figure 1(c): power-supply impedance versus frequency.

Sweeps |Z(f)| of the Section 2 example supply around its resonance and
reports the resonant peak and half-power band, reproducing the annotated
impedance plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import PowerSupplyConfig, SECTION2_SUPPLY
from repro.power.rlc import RLCAnalysis, impedance_sweep
from repro.experiments.report import ascii_series, render_table

__all__ = ["Figure1Result", "run"]


@dataclass
class Figure1Result:
    """Impedance sweep and the band annotations of Figure 1(c)."""

    frequencies_hz: np.ndarray
    impedance_ohms: np.ndarray
    resonant_frequency_hz: float
    peak_impedance_ohms: float
    band_low_hz: float
    band_high_hz: float
    quality_factor: float

    def to_svg_charts(self) -> dict:
        """SVG renderings keyed by chart name."""
        from repro.experiments.svg import LineChart

        chart = LineChart(
            title="Figure 1(c): power-supply impedance",
            x_label="frequency (MHz)",
            y_label="|Z| (mOhm)",
        )
        chart.add_series(
            "|Z(f)|",
            [f / 1e6 for f in self.frequencies_hz],
            [z * 1e3 for z in self.impedance_ohms],
        )
        chart.add_vertical_guide("band", self.band_low_hz / 1e6)
        chart.add_vertical_guide("", self.band_high_hz / 1e6)
        chart.add_vertical_guide("f0", self.resonant_frequency_hz / 1e6)
        return {"impedance": chart.render()}

    def render(self) -> str:
        table = render_table(
            "Figure 1(c): power-supply impedance",
            ["quantity", "value"],
            [
                ["resonant frequency (MHz)", self.resonant_frequency_hz / 1e6],
                ["peak impedance (mOhm)", self.peak_impedance_ohms * 1e3],
                ["band low edge (MHz)", self.band_low_hz / 1e6],
                ["band high edge (MHz)", self.band_high_hz / 1e6],
                ["quality factor Q", self.quality_factor],
            ],
        )
        plot = ascii_series(
            self.impedance_ohms * 1e3,
            label="|Z(f)| in mOhm, 40-160 MHz",
        )
        return f"{table}\n\n{plot}"


def run(
    config: PowerSupplyConfig = SECTION2_SUPPLY,
    low_hz: float = 40e6,
    high_hz: float = 160e6,
    points: int = 481,
) -> Figure1Result:
    """Regenerate Figure 1(c) for the given supply (Section 2 example)."""
    analysis = RLCAnalysis(config)
    frequencies, impedance = impedance_sweep(config, low_hz, high_hz, points)
    band = analysis.band
    return Figure1Result(
        frequencies_hz=frequencies,
        impedance_ohms=impedance,
        resonant_frequency_hz=analysis.resonant_frequency_hz,
        peak_impedance_ohms=float(np.max(impedance)),
        band_low_hz=band.low_hz,
        band_high_hz=band.high_hz,
        quality_factor=analysis.quality_factor,
    )
