"""Figure 3: stimulation of the power supply at the resonant frequency.

A 34 A peak-to-peak square wave at the resonant period runs from cycle 100
to cycle 500.  The paper's observations, all checked here:

* the noise margin is violated when the resonant event count reaches the
  maximum repetition tolerance (4);
* after the stimulus stops, ringing dissipates at about 66 % per resonant
  period (Q = 2.83).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.config import PowerSupplyConfig, TABLE1_SUPPLY, TuningConfig
from repro.core.detector import ResonanceDetector
from repro.core.sensor import CurrentSensor
from repro.power.rlc import RLCAnalysis
from repro.power.supply import PowerSupply
from repro.power.waveforms import square_wave
from repro.experiments.report import ascii_series, render_table

__all__ = ["Figure3Result", "run"]


@dataclass
class Figure3Result:
    currents: np.ndarray
    voltages: np.ndarray
    event_counts: np.ndarray          # detector count per cycle
    first_violation_cycle: Optional[int]
    count_at_violation: Optional[int]
    count_milestones: List[Tuple[int, int]]   # (count, first cycle)
    measured_dissipation_per_period: float
    expected_dissipation_per_period: float

    def to_svg_charts(self) -> dict:
        """SVG renderings keyed by chart name."""
        from repro.experiments.svg import LineChart

        cycles = list(range(len(self.voltages)))
        voltage = LineChart(
            title="Figure 3: supply voltage under resonant stimulation",
            x_label="cycle", y_label="deviation (mV)",
        )
        voltage.add_series("voltage", cycles, [v * 1e3 for v in self.voltages])
        voltage.add_guide("+margin", 50.0)
        voltage.add_guide("-margin", -50.0)
        current = LineChart(
            title="Figure 3: stimulus current",
            x_label="cycle", y_label="current (A)",
        )
        current.add_series("current", cycles, list(self.currents))
        count = LineChart(
            title="Figure 3: resonant event count",
            x_label="cycle", y_label="count",
        )
        count.add_series(
            "event count", cycles, [float(c) for c in self.event_counts]
        )
        return {
            "voltage": voltage.render(),
            "current": current.render(),
            "count": count.render(),
        }

    def render(self) -> str:
        rows = [["count %d first reached" % count, cycle]
                for count, cycle in self.count_milestones]
        rows.append(["first violation cycle", self.first_violation_cycle])
        rows.append(["event count at violation", self.count_at_violation])
        rows.append(
            ["measured dissipation/period", self.measured_dissipation_per_period]
        )
        rows.append(
            ["expected dissipation/period", self.expected_dissipation_per_period]
        )
        table = render_table(
            "Figure 3: stimulation at the resonant frequency",
            ["observation", "value"], rows,
        )
        volt = ascii_series(np.abs(self.voltages) * 1e3,
                            label="|voltage deviation| (mV)")
        curr = ascii_series(self.currents, label="stimulus current (A)")
        return f"{table}\n\n{volt}\n\n{curr}"


def run(
    supply_config: PowerSupplyConfig = TABLE1_SUPPLY,
    amplitude_pp: float = 34.0,
    mean_current: float = 70.0,
    start: int = 100,
    end: int = 500,
    n_cycles: int = 900,
    tuning: Optional[TuningConfig] = None,
) -> Figure3Result:
    """Reproduce the Figure 3 stimulation experiment."""
    tuning = tuning or TuningConfig()
    analysis = RLCAnalysis(supply_config)
    period = analysis.resonant_period_cycles
    wave = square_wave(
        n_cycles, period, amplitude_pp, mean=mean_current, start=start, end=end
    )
    supply = PowerSupply(supply_config, initial_current=mean_current, record=True)
    detector = ResonanceDetector(
        analysis.band.half_periods,
        tuning.resonant_current_threshold_amps,
        tuning.max_repetition_tolerance,
    )
    sensor = CurrentSensor()

    counts = np.zeros(n_cycles, dtype=int)
    for cycle, current in enumerate(wave):
        supply.step(current)
        detector.observe(cycle, sensor.read(current))
        counts[cycle] = detector.current_count(cycle)

    voltages = np.asarray(supply.trace.voltages)
    violation = supply.first_violation_cycle
    count_at_violation = int(counts[violation]) if violation is not None else None
    milestones = []
    for count in range(1, int(counts.max()) + 1):
        hits = np.nonzero(counts >= count)[0]
        if len(hits):
            milestones.append((count, int(hits[0])))

    measured = _dissipation_after_stimulus(voltages, end, period)
    return Figure3Result(
        currents=wave,
        voltages=voltages,
        event_counts=counts,
        first_violation_cycle=violation,
        count_at_violation=count_at_violation,
        count_milestones=milestones,
        measured_dissipation_per_period=measured,
        expected_dissipation_per_period=analysis.dissipation_per_period,
    )


def _dissipation_after_stimulus(
    voltages: np.ndarray, stimulus_end: int, period: int
) -> float:
    """Peak-amplitude decay per resonant period after the stimulus stops."""
    first = np.max(np.abs(voltages[stimulus_end : stimulus_end + period]))
    second = np.max(
        np.abs(voltages[stimulus_end + period : stimulus_end + 2 * period])
    )
    if first <= 0:
        return 0.0
    return 1.0 - second / first
