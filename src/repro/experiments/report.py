"""Plain-text table rendering for experiment results.

Every experiment's ``render()`` produces the paper's table or figure as
aligned text so `python -m repro.experiments <id>` output can be compared
side by side with the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "format_number", "ascii_series"]


def format_number(value, precision: int = 3) -> str:
    """Format a cell: floats to ``precision``, small fractions in e-notation."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and abs(value) < 10 ** (-precision):
            return f"{value:.2e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    precision: int = 3,
) -> str:
    """Render an aligned text table with a title rule."""
    formatted: List[List[str]] = [
        [format_number(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def ascii_series(
    values: Sequence[float],
    height: int = 12,
    width: int = 72,
    label: str = "",
) -> str:
    """Down-sample a series into a crude ASCII plot (for figure experiments)."""
    if not len(values):
        return f"{label}: (empty)"
    step = max(1, len(values) // width)
    sampled = [
        max(values[i : i + step]) for i in range(0, len(values), step)
    ][:width]
    low = min(sampled)
    high = max(sampled)
    span = (high - low) or 1.0
    rows = []
    for level in range(height, -1, -1):
        threshold = low + span * level / height
        row = "".join("#" if v >= threshold else " " for v in sampled)
        rows.append(row)
    header = f"{label}  [min={low:.3g}, max={high:.3g}]"
    return "\n".join([header] + rows)
