"""Persist experiment results to a directory (text tables + SVG charts).

``save_result`` writes what a result object can produce: its rendered text
table always, one SVG file per chart when the result exposes
``to_svg_charts()``.  ``run_and_save_all`` regenerates every paper artifact
at full scale into a directory -- the library-level equivalent of
``tools/run_full_experiments.py``.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["save_result", "run_and_save_all"]


def save_result(result, directory: str, stem: str) -> List[str]:
    """Write one result's artifacts; returns the paths written."""
    os.makedirs(directory, exist_ok=True)
    written = []
    text_path = os.path.join(directory, f"{stem}.txt")
    with open(text_path, "w") as handle:
        handle.write(result.render() + "\n")
    written.append(text_path)
    if hasattr(result, "to_svg_charts"):
        for chart_name, svg in result.to_svg_charts().items():
            svg_path = os.path.join(directory, f"{stem}_{chart_name}.svg")
            with open(svg_path, "w") as handle:
                handle.write(svg)
            written.append(svg_path)
    return written


def run_and_save_all(
    directory: str,
    quick: bool = False,
    names: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str, float], None]] = None,
) -> Dict[str, List[str]]:
    """Run the registered experiments and persist each one's artifacts."""
    chosen = list(names) if names is not None else sorted(EXPERIMENTS)
    written: Dict[str, List[str]] = {}
    for name in chosen:
        started = time.time()
        result = run_experiment(name, quick=quick)
        written[name] = save_result(result, directory, name)
        if progress is not None:
            progress(name, time.time() - started)
    return written
