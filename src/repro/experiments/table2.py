"""Table 2: classification of the SPEC2K applications.

Runs every benchmark on the base (uncontrolled) processor and classifies it
as violating or non-violating.  The paper classifies over 500 M committed
instructions; at our run lengths the synthetic rare violators are scaled to
stay observable, and classification uses a small threshold on the violation
fraction (see DESIGN.md / EXPERIMENTS.md) rather than strictly "any
violation", to keep a noise floor between the designed split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sim.runner import BenchmarkRunner, SweepConfig
from repro.uarch.workloads import (
    PAPER_IPC,
    PAPER_VIOLATION_FRACTION,
    SPEC2K,
    VIOLATING_NAMES,
)
from repro.experiments.report import render_table

__all__ = ["Table2Row", "Table2Result", "run", "CLASSIFICATION_THRESHOLD"]

#: Violation-fraction threshold separating violating from non-violating at
#: our run lengths (the designed split leaves a >5x gap on each side).
CLASSIFICATION_THRESHOLD = 1e-4


@dataclass(frozen=True)
class Table2Row:
    benchmark: str
    ipc: float
    paper_ipc: float
    violation_fraction: float
    paper_violation_fraction: Optional[float]
    violating: bool
    paper_violating: bool

    @property
    def classification_matches_paper(self) -> bool:
        return self.violating == self.paper_violating


@dataclass
class Table2Result:
    rows: Tuple[Table2Row, ...]
    n_cycles: int

    @property
    def violating(self) -> List[str]:
        return [row.benchmark for row in self.rows if row.violating]

    @property
    def non_violating(self) -> List[str]:
        return [row.benchmark for row in self.rows if not row.violating]

    @property
    def mismatches(self) -> List[str]:
        return [
            row.benchmark
            for row in self.rows
            if not row.classification_matches_paper
        ]

    def render(self) -> str:
        cells = []
        for row in sorted(self.rows, key=lambda r: (not r.violating, r.benchmark)):
            cells.append([
                row.benchmark,
                row.ipc,
                row.paper_ipc,
                row.violation_fraction,
                row.paper_violation_fraction
                if row.paper_violation_fraction is not None else "-",
                "VIOLATING" if row.violating else "ok",
                "match" if row.classification_matches_paper else "MISMATCH",
            ])
        table = render_table(
            f"Table 2: classification of SPEC2K applications ({self.n_cycles} cycles)",
            ["benchmark", "IPC", "paper IPC", "viol fraction",
             "paper fraction", "class", "vs paper"],
            cells, precision=2,
        )
        footer = (
            f"\nviolating: {len(self.violating)}/12 expected, "
            f"mismatches: {self.mismatches or 'none'}"
        )
        return table + footer


def run(
    n_cycles: int = 120_000,
    benchmarks: Optional[Sequence[str]] = None,
    sweep_config: Optional[SweepConfig] = None,
) -> Table2Result:
    """Classify the benchmarks on the base processor."""
    config = sweep_config or SweepConfig(n_cycles=n_cycles)
    runner = BenchmarkRunner(config)
    names = list(benchmarks) if benchmarks is not None else sorted(SPEC2K)
    rows = []
    for name in names:
        result = runner.run_base(name)
        rows.append(
            Table2Row(
                benchmark=name,
                ipc=result.ipc,
                paper_ipc=PAPER_IPC[name],
                violation_fraction=result.violation_fraction,
                paper_violation_fraction=PAPER_VIOLATION_FRACTION.get(name),
                violating=result.violation_fraction > CLASSIFICATION_THRESHOLD,
                paper_violating=name in VIOLATING_NAMES,
            )
        )
    return Table2Result(rows=tuple(rows), n_cycles=config.n_cycles)
