"""Table 5: pipeline damping (ref [14]) as delta tightens.

Damping is applied at the resonant period (50-cycle window) with the
worst-case allowed variation delta expressed relative to the resonant
current variation threshold: 1x, 0.5x and 0.25x, as in the paper.  The
trend to reproduce: costs grow steeply as delta tightens -- and, beyond
the paper's own table, our violation column shows *why* delta must
tighten: at 1x the band is not covered and violations survive.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.baselines.damping import PipelineDampingController
from repro.config import TuningConfig
from repro.sim.runner import BenchmarkRunner, SweepConfig, TechniqueSummary
from repro.experiments.report import render_table

__all__ = ["Table5Result", "run", "PAPER_ROWS"]

#: The paper's Table 5 (delta relative to threshold -> headline numbers).
PAPER_ROWS = {
    1.0: dict(worst=1.35, avg=1.10, ed=1.12),
    0.5: dict(worst=1.60, avg=1.15, ed=1.17),
    0.25: dict(worst=2.04, avg=1.24, ed=1.26),
}


@dataclass
class Table5Result:
    summaries: Tuple[Tuple[float, TechniqueSummary], ...]
    threshold_amps: float
    n_cycles: int

    def summary_for(self, relative_delta: float) -> TechniqueSummary:
        for delta, summary in self.summaries:
            if delta == relative_delta:
                return summary
        raise KeyError(relative_delta)

    def render(self) -> str:
        rows = []
        for relative_delta, summary in self.summaries:
            rows.append([
                relative_delta,
                relative_delta * self.threshold_amps,
                f"{summary.worst_slowdown:.3f} ({summary.worst_benchmark})",
                summary.avg_slowdown,
                summary.avg_energy_delay,
                summary.total_violation_cycles,
            ])
        return render_table(
            f"Table 5: pipeline damping ({self.n_cycles} cycles/benchmark)",
            ["delta (rel)", "delta (A)", "worst slowdown",
             "avg slowdown", "avg E*D", "violations"],
            rows,
        )


def _damping_controller(supply, processor, delta_amps):
    """Module-level builder so sweep factories pickle for worker processes."""
    return PipelineDampingController(supply, processor, delta_amps)


def run(
    relative_deltas: Sequence[float] = (1.0, 0.5, 0.25),
    n_cycles: int = 60_000,
    benchmarks: Optional[Sequence[str]] = None,
    tuning: Optional[TuningConfig] = None,
    sweep_config: Optional[SweepConfig] = None,
) -> Table5Result:
    """Run the Table 5 sweep."""
    sweep = sweep_config or SweepConfig(n_cycles=n_cycles)
    runner = BenchmarkRunner(sweep)
    threshold = (tuning or TuningConfig()).resonant_current_threshold_amps
    summaries = []
    for relative_delta in relative_deltas:
        delta_amps = relative_delta * threshold
        factory = functools.partial(_damping_controller, delta_amps=delta_amps)
        summaries.append((relative_delta, runner.sweep(factory, benchmarks)))
    return Table5Result(
        summaries=tuple(summaries),
        threshold_amps=threshold,
        n_cycles=sweep.n_cycles,
    )
