"""Table 3: resonance tuning across initial response times.

For each initial response time (75-200 cycles in the paper), runs
resonance tuning over the benchmark set and reports the paper's columns:
fraction of cycles in first- and second-level response, worst relative
slowdown (and which application), applications above 15 % slowdown,
average relative slowdown and average relative energy-delay -- plus the
violation count, which must be zero for the technique's guarantee.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from repro.config import TuningConfig
from repro.core.tuning import ResonanceTuningController
from repro.sim.runner import BenchmarkRunner, SweepConfig, TechniqueSummary
from repro.experiments.report import render_table

__all__ = ["Table3Result", "run", "PAPER_ROWS"]

#: The paper's Table 3 (initial response time -> headline numbers).
PAPER_ROWS = {
    75: dict(first=0.10, second=0.0040, worst=1.19, avg=1.043, ed=1.052),
    100: dict(first=0.12, second=0.0038, worst=1.20, avg=1.048, ed=1.057),
    125: dict(first=0.15, second=0.0032, worst=1.19, avg=1.054, ed=1.076),
    150: dict(first=0.17, second=0.0031, worst=1.35, avg=1.068, ed=1.079),
    200: dict(first=0.20, second=0.0027, worst=1.27, avg=1.075, ed=1.088),
}


@dataclass
class Table3Result:
    summaries: Tuple[Tuple[int, TechniqueSummary], ...]
    n_cycles: int

    def summary_for(self, initial_response_time: int) -> TechniqueSummary:
        for time_value, summary in self.summaries:
            if time_value == initial_response_time:
                return summary
        raise KeyError(initial_response_time)

    def render(self) -> str:
        rows = []
        for time_value, summary in self.summaries:
            rows.append([
                time_value,
                summary.avg_first_level_fraction,
                summary.avg_second_level_fraction,
                f"{summary.worst_slowdown:.3f} ({summary.worst_benchmark})",
                summary.apps_over_15_percent,
                summary.avg_slowdown,
                summary.avg_energy_delay,
                summary.total_violation_cycles,
            ])
        return render_table(
            f"Table 3: resonance tuning ({self.n_cycles} cycles/benchmark)",
            ["init time", "frac 1st", "frac 2nd", "worst slowdown",
             ">15%", "avg slowdown", "avg E*D", "violations"],
            rows,
        )


def _tuned_controller(supply, processor, tuning):
    """Module-level builder so sweep factories pickle for worker processes."""
    return ResonanceTuningController(supply, processor, tuning)


def run(
    initial_response_times: Sequence[int] = (75, 100, 125, 150, 200),
    n_cycles: int = 60_000,
    benchmarks: Optional[Sequence[str]] = None,
    tuning: Optional[TuningConfig] = None,
    sweep_config: Optional[SweepConfig] = None,
) -> Table3Result:
    """Run the Table 3 sweep."""
    config = sweep_config or SweepConfig(n_cycles=n_cycles)
    runner = BenchmarkRunner(config)
    base_tuning = tuning or TuningConfig()
    summaries = []
    for time_value in initial_response_times:
        tuned = replace(base_tuning, initial_response_time=time_value)
        factory = functools.partial(_tuned_controller, tuning=tuned)
        summaries.append((time_value, runner.sweep(factory, benchmarks)))
    return Table3Result(summaries=tuple(summaries), n_cycles=config.n_cycles)
