"""Table 4: the voltage-threshold technique of ref [10].

Sweeps the paper's five (target threshold, sensor noise, delay)
configurations and reports fraction of cycles in response, worst and
average relative slowdown and average relative energy-delay.  The paper's
trend to reproduce: near-ideal sensors are cheap, but realistic noise and
delay force lower actual thresholds and degrade the technique sharply.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.baselines.voltage_threshold import VoltageThresholdController
from repro.sim.runner import BenchmarkRunner, SweepConfig, TechniqueSummary
from repro.experiments.report import render_table

__all__ = ["VTConfig", "Table4Result", "run", "PAPER_CONFIGS", "PAPER_ROWS"]


@dataclass(frozen=True)
class VTConfig:
    """One Table 4 row: thresholds in millivolts, delay in cycles."""

    target_mv: float
    noise_mv: float
    delay_cycles: int

    @property
    def actual_mv(self) -> float:
        return self.target_mv - 0.5 * self.noise_mv

    @property
    def label(self) -> str:
        return f"{self.target_mv:.0f}/{self.noise_mv:.0f}/{self.delay_cycles}"


PAPER_CONFIGS = (
    VTConfig(30, 0, 0),
    VTConfig(20, 0, 0),
    VTConfig(30, 15, 0),
    VTConfig(20, 10, 5),
    VTConfig(20, 15, 3),
)

#: The paper's Table 4 headline numbers per configuration label.
PAPER_ROWS = {
    "30/0/0": dict(response=0.002, worst=1.038, avg=1.005, ed=1.030),
    "20/0/0": dict(response=0.04, worst=1.180, avg=1.039, ed=1.047),
    "30/15/0": dict(response=0.05, worst=1.11, avg=1.031, ed=1.074),
    "20/10/5": dict(response=0.15, worst=1.32, avg=1.108, ed=1.191),
    "20/15/3": dict(response=0.27, worst=1.68, avg=1.236, ed=1.460),
}


@dataclass
class Table4Result:
    summaries: Tuple[Tuple[VTConfig, TechniqueSummary], ...]
    n_cycles: int

    def summary_for(self, label: str) -> TechniqueSummary:
        for config, summary in self.summaries:
            if config.label == label:
                return summary
        raise KeyError(label)

    def render(self) -> str:
        rows = []
        for config, summary in self.summaries:
            rows.append([
                config.label,
                config.actual_mv,
                summary.avg_second_level_fraction,
                f"{summary.worst_slowdown:.3f} ({summary.worst_benchmark})",
                summary.avg_slowdown,
                summary.avg_energy_delay,
                summary.total_violation_cycles,
            ])
        return render_table(
            f"Table 4: technique of [10] ({self.n_cycles} cycles/benchmark)",
            ["thr/noise/delay", "actual (mV)", "frac response",
             "worst slowdown", "avg slowdown", "avg E*D", "violations"],
            rows,
        )


def _vt_controller(supply, processor, config):
    """Module-level builder so sweep factories pickle for worker processes."""
    return VoltageThresholdController(
        supply,
        processor,
        target_threshold_volts=config.target_mv * 1e-3,
        sensor_noise_pp_volts=config.noise_mv * 1e-3,
        delay_cycles=config.delay_cycles,
    )


def run(
    configs: Sequence[VTConfig] = PAPER_CONFIGS,
    n_cycles: int = 60_000,
    benchmarks: Optional[Sequence[str]] = None,
    sweep_config: Optional[SweepConfig] = None,
) -> Table4Result:
    """Run the Table 4 sweep."""
    sweep = sweep_config or SweepConfig(n_cycles=n_cycles)
    runner = BenchmarkRunner(sweep)
    summaries = []
    for config in configs:
        factory = functools.partial(_vt_controller, config=config)
        summaries.append((config, runner.sweep(factory, benchmarks)))
    return Table4Result(summaries=tuple(summaries), n_cycles=sweep.n_cycles)
