"""Cycle-level power-supply simulation with noise-margin tracking.

:class:`PowerSupply` wraps the Heun integrator, subtracts the IR drop
(Section 4.1: "we ignore the IR drop and assume that the power supply is
capable of maintaining a supply voltage of Vdd at any constant current
level") and flags noise-margin violations whenever the reported deviation
exceeds the +/-5 % margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

from repro.config import PowerSupplyConfig
from repro.errors import FaultError, SimulationError
from repro.power.integrator import HeunIntegrator
from repro.power.rlc import RLCAnalysis

__all__ = ["SupplyTrace", "PowerSupply"]


@dataclass
class SupplyTrace:
    """Recorded per-cycle history of a :class:`PowerSupply` run."""

    currents: List[float] = field(default_factory=list)
    voltages: List[float] = field(default_factory=list)
    violations: List[bool] = field(default_factory=list)

    def as_arrays(self):
        """Return ``(currents, voltages, violations)`` as numpy arrays."""
        return (
            np.asarray(self.currents),
            np.asarray(self.voltages),
            np.asarray(self.violations, dtype=bool),
        )


class PowerSupply:
    """Per-cycle power-supply model: ``step(current) -> voltage deviation``.

    Parameters
    ----------
    config:
        Circuit and margin parameters.
    initial_current:
        CPU current assumed before cycle 0; the circuit starts in the
        corresponding steady state so start-up transients do not register as
        inductive noise.
    record:
        When True, keep the full per-cycle history in :attr:`trace`.
    substeps:
        Integrator substeps per processor cycle.
    """

    def __init__(
        self,
        config: PowerSupplyConfig,
        initial_current: float = 0.0,
        record: bool = False,
        substeps: int = 1,
    ):
        self.config = config
        self.analysis = RLCAnalysis(config)
        self._integrator = HeunIntegrator(config, substeps=substeps)
        self._integrator.reset(initial_current)
        self._margin = config.noise_margin_volts
        self._record = record
        self.trace: Optional[SupplyTrace] = SupplyTrace() if record else None
        self.cycle = 0
        self.violation_cycles = 0
        self.violation_events = 0
        self._in_violation = False
        self.last_voltage = 0.0
        self.first_violation_cycle: Optional[int] = None

    @property
    def noise_margin_volts(self) -> float:
        return self._margin

    def reset(self, initial_current: float = 0.0) -> None:
        """Return to the steady state and clear all statistics."""
        self._integrator.reset(initial_current)
        self.cycle = 0
        self.violation_cycles = 0
        self.violation_events = 0
        self._in_violation = False
        self.last_voltage = 0.0
        self.first_violation_cycle = None
        if self._record:
            self.trace = SupplyTrace()

    def reset_violation_tracking(self) -> None:
        """Forget in-progress violation bookkeeping at a measurement boundary.

        Called by the simulation loop at the end of warmup:
        ``first_violation_cycle`` set by a warmup transient must not leak
        into steady-state results (the paper measures violations in steady
        state only), and a violation spanning the boundary must register as
        a fresh steady-state event rather than riding on a warmup-started
        one.  Cumulative counters are untouched -- the caller differences
        them against its own snapshot.
        """
        self.first_violation_cycle = None
        self._in_violation = False

    def step(self, cpu_current: float) -> float:
        """Advance one cycle; return the IR-drop-corrected voltage deviation.

        Raises :class:`FaultError` on a non-finite input current (a faulty
        upstream model must not silently poison the integrator state) and
        :class:`SimulationError` if the integrated voltage itself leaves the
        finite range (numerical blow-up), so garbage never reaches metrics.
        """
        if not math.isfinite(cpu_current):
            raise FaultError(
                f"non-finite CPU current {cpu_current!r} at cycle {self.cycle}"
            )
        raw = self._integrator.step(cpu_current)
        voltage = raw + self.config.resistance_ohms * cpu_current
        if not math.isfinite(voltage):
            raise SimulationError(
                f"power-supply voltage diverged ({voltage!r}) at cycle"
                f" {self.cycle}; integrator state is no longer trustworthy"
            )
        violated = abs(voltage) > self._margin
        if violated:
            self.violation_cycles += 1
            if not self._in_violation:
                self.violation_events += 1
            if self.first_violation_cycle is None:
                self.first_violation_cycle = self.cycle
        self._in_violation = violated
        self.last_voltage = voltage
        if self._record:
            self.trace.currents.append(cpu_current)
            self.trace.voltages.append(voltage)
            self.trace.violations.append(violated)
        self.cycle += 1
        return voltage

    def run(self, currents: Iterable[float]) -> np.ndarray:
        """Step through a whole current waveform; return the voltage waveform.

        Delegates to the vectorized cycle kernel (bit-identical to the
        per-cycle ``step`` loop, including error and bookkeeping
        semantics) unless ``REPRO_KERNEL=0`` disables it or a subclass
        overrides ``step``.
        """
        from repro.core import kernel as core_kernel

        if core_kernel.kernel_enabled() and type(self) is PowerSupply:
            return core_kernel.run_supply(self, list(currents))
        return np.asarray([self.step(current) for current in currents])

    @property
    def violation_fraction(self) -> float:
        """Fraction of simulated cycles spent beyond the noise margin."""
        if self.cycle == 0:
            return 0.0
        return self.violation_cycles / self.cycle

    def metrics_snapshot(self) -> dict:
        """Plain-data counters for the observability harvest.

        Read once per run end (never in the cycle loop), so the supply's
        hot path stays untouched when metrics are enabled.
        """
        return {
            "cycles": self.cycle,
            "violation_cycles": self.violation_cycles,
            "violation_events": self.violation_events,
        }
