"""Power-distribution-network substrate: RLC analysis, simulation, calibration.

Public surface:

* :class:`~repro.power.rlc.RLCAnalysis` / :func:`~repro.power.rlc.impedance_sweep`
  -- closed-form resonance characteristics and Figure 1(c) impedance curves.
* :class:`~repro.power.supply.PowerSupply` -- cycle-level Heun simulation with
  noise-margin tracking.
* :mod:`~repro.power.waveforms` -- synthetic current stimuli.
* :func:`~repro.power.calibration.calibrate` -- the Section 2.1.3 procedure
  producing the resonant current variation threshold and maximum repetition
  tolerance.
"""

from repro.power.calibration import (
    CalibrationResult,
    calibrate,
    max_repetition_tolerance,
    max_tolerable_variation,
    quiet_cycles_for_event_decay,
    resonant_current_variation_threshold,
    sustained_wave_violates,
)
from repro.power.integrator import CircuitState, HeunIntegrator
from repro.power.lowfreq import (
    TwoStageSupply,
    TwoStageSupplyConfig,
    two_stage_impedance,
)
from repro.power.rlc import ResonanceBand, RLCAnalysis, impedance_sweep
from repro.power.supply import PowerSupply, SupplyTrace
from repro.power import waveforms

__all__ = [
    "CalibrationResult",
    "calibrate",
    "max_repetition_tolerance",
    "max_tolerable_variation",
    "quiet_cycles_for_event_decay",
    "resonant_current_variation_threshold",
    "sustained_wave_violates",
    "CircuitState",
    "HeunIntegrator",
    "ResonanceBand",
    "RLCAnalysis",
    "impedance_sweep",
    "PowerSupply",
    "SupplyTrace",
    "TwoStageSupply",
    "TwoStageSupplyConfig",
    "two_stage_impedance",
    "waveforms",
]
