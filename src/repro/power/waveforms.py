"""Synthetic current stimuli for exercising the power supply.

These generators produce per-cycle CPU-current arrays used by the
calibration routines (Section 2.1.3), the Figure 3 stimulation experiment
(a 34 A square wave at the resonant frequency between cycles 100 and 500)
and the test suite.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "constant",
    "square_wave",
    "sine_wave",
    "triangle_wave",
    "step",
    "burst",
    "chirp",
]


def _validate(n_cycles: int, period_cycles: float = 2.0) -> None:
    if n_cycles <= 0:
        raise ConfigurationError("n_cycles must be positive")
    if period_cycles < 2:
        raise ConfigurationError("period_cycles must be at least 2")


def constant(n_cycles: int, level: float) -> np.ndarray:
    """A flat current of ``level`` amps."""
    _validate(n_cycles)
    return np.full(n_cycles, float(level))


def square_wave(
    n_cycles: int,
    period_cycles: float,
    amplitude_pp: float,
    mean: float = 0.0,
    start: int = 0,
    end: "int | None" = None,
    phase_cycles: float = 0.0,
) -> np.ndarray:
    """Square wave of ``amplitude_pp`` amps peak-to-peak around ``mean``.

    Outside ``[start, end)`` the waveform sits at ``mean`` (this reproduces
    the Figure 3 stimulus, which begins at cycle 100 and ends at cycle 500).
    """
    _validate(n_cycles, period_cycles)
    cycles = np.arange(n_cycles, dtype=float)
    phase = ((cycles - start + phase_cycles) % period_cycles) / period_cycles
    wave = np.where(phase < 0.5, 0.5, -0.5) * amplitude_pp + mean
    return _apply_window(wave, mean, start, end)


def sine_wave(
    n_cycles: int,
    period_cycles: float,
    amplitude_pp: float,
    mean: float = 0.0,
    start: int = 0,
    end: "int | None" = None,
) -> np.ndarray:
    """Sine wave of ``amplitude_pp`` amps peak-to-peak around ``mean``."""
    _validate(n_cycles, period_cycles)
    cycles = np.arange(n_cycles, dtype=float)
    wave = mean + 0.5 * amplitude_pp * np.sin(
        2.0 * math.pi * (cycles - start) / period_cycles
    )
    return _apply_window(wave, mean, start, end)


def triangle_wave(
    n_cycles: int,
    period_cycles: float,
    amplitude_pp: float,
    mean: float = 0.0,
    start: int = 0,
    end: "int | None" = None,
) -> np.ndarray:
    """Triangle wave of ``amplitude_pp`` amps peak-to-peak around ``mean``."""
    _validate(n_cycles, period_cycles)
    cycles = np.arange(n_cycles, dtype=float)
    phase = ((cycles - start) % period_cycles) / period_cycles
    tri = 4.0 * np.abs(phase - 0.5) - 1.0  # in [-1, 1], peak at phase 0
    wave = mean + 0.5 * amplitude_pp * tri
    return _apply_window(wave, mean, start, end)


def step(n_cycles: int, before: float, after: float, at_cycle: int) -> np.ndarray:
    """A single current step from ``before`` to ``after`` at ``at_cycle``."""
    _validate(n_cycles)
    if not 0 <= at_cycle <= n_cycles:
        raise ConfigurationError("at_cycle must lie within the waveform")
    wave = np.full(n_cycles, float(before))
    wave[at_cycle:] = after
    return wave


def burst(
    n_cycles: int,
    period_cycles: float,
    amplitude_pp: float,
    mean: float,
    start: int,
    half_waves: int,
) -> np.ndarray:
    """Exactly ``half_waves`` half-periods of square-wave excitation.

    Used to measure how many repetitions the supply tolerates before a
    noise-margin violation (the maximum repetition tolerance, counted in
    half waves per Section 2.1.3).
    """
    _validate(n_cycles, period_cycles)
    if half_waves < 1:
        raise ConfigurationError("half_waves must be at least 1")
    end = start + round(half_waves * period_cycles / 2.0)
    return square_wave(n_cycles, period_cycles, amplitude_pp, mean, start, end)


def chirp(
    n_cycles: int,
    start_period_cycles: float,
    end_period_cycles: float,
    amplitude_pp: float,
    mean: float = 0.0,
) -> np.ndarray:
    """Sine sweep whose period moves linearly between the two endpoints.

    Useful for probing the resonance band: the supply response peaks while
    the instantaneous period crosses the band.
    """
    _validate(n_cycles, min(start_period_cycles, end_period_cycles))
    cycles = np.arange(n_cycles, dtype=float)
    periods = np.linspace(start_period_cycles, end_period_cycles, n_cycles)
    phase = np.cumsum(2.0 * math.pi / periods)
    return mean + 0.5 * amplitude_pp * np.sin(phase)


def _apply_window(
    wave: np.ndarray, mean: float, start: int, end: "int | None"
) -> np.ndarray:
    if start < 0:
        raise ConfigurationError("start must be non-negative")
    if end is not None and end < start:
        raise ConfigurationError("end must not precede start")
    wave = wave.copy()
    wave[:start] = mean
    if end is not None:
        wave[end:] = mean
    return wave
