"""Second-order RLC analysis of the power-distribution network (Section 2.1).

The network of Figure 1(b) is the series combination of the supply impedance
R and the die-to-package inductance L, shunted at the die node by the on-die
decoupling capacitance C; the CPU is a current source at the die node.  This
module provides the closed-form resonance characteristics the paper derives:

* resonant frequency ``f0 = 1 / (2 pi sqrt(LC))`` (Section 2.1.1),
* underdamped check ``R^2 < 4 L / C`` (Section 2.1.1),
* quality factor ``Q = 2 pi f0 L / R`` and the resonance band (Section 2.1.2),
* damping rate ``f0 pi / Q`` nepers/second and the per-period dissipation
  (Section 2.1.3),
* driving-point impedance Z(f) seen by the CPU current source (Figure 1(c)).

The resonance band uses the exact half-power expressions from DeCarlo & Lin
(the paper's reference [4]) rather than the ``f0 +/- B/2`` approximation:
``f_lo,hi = f0 (sqrt(1 + 1/(4 Q^2)) -/+ 1/(2 Q))``.  For the Table 1 supply
this yields 83.9-119 MHz, i.e. periods of 84-119 processor cycles at 10 GHz,
exactly as the paper states.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.config import PowerSupplyConfig
from repro.errors import CircuitError

__all__ = ["ResonanceBand", "RLCAnalysis", "impedance_sweep"]


@dataclass(frozen=True)
class ResonanceBand:
    """Half-power resonance band in hertz and in whole processor cycles.

    ``min_period_cycles`` corresponds to the *upper* band-edge frequency and
    ``max_period_cycles`` to the lower one.  Frequencies inside the band see
    more than half the resonant-peak energy; current variations there can
    build into noise-margin violations.
    """

    low_hz: float
    high_hz: float
    min_period_cycles: int
    max_period_cycles: int

    def contains_hz(self, frequency_hz: float) -> bool:
        """Return True if ``frequency_hz`` lies inside the band."""
        return self.low_hz <= frequency_hz <= self.high_hz

    def contains_period(self, period_cycles: int) -> bool:
        """Return True if a period of ``period_cycles`` cycles is resonant."""
        return self.min_period_cycles <= period_cycles <= self.max_period_cycles

    @property
    def half_periods(self) -> range:
        """All half-periods (in cycles) the detector must cover (Section 3.1.3).

        The low edge uses ceiling division: for an odd ``min_period_cycles``
        plain truncation would start the range at a half-period whose full
        period lies *below* the band, so the detector's shortest probe
        window sat out-of-band while the band's own short edge went
        uncovered by a dedicated adder.  ``84-119`` cycles (Table 1) is
        unaffected; an odd-edged band like ``85-119`` now starts at 43.
        """
        return range(
            (self.min_period_cycles + 1) // 2, self.max_period_cycles // 2 + 1
        )


class RLCAnalysis:
    """Closed-form resonance characteristics of a :class:`PowerSupplyConfig`.

    Raises :class:`CircuitError` for analyses that require an underdamped
    circuit when the circuit is critically damped or overdamped.
    """

    def __init__(self, config: PowerSupplyConfig):
        self.config = config
        self._r = config.resistance_ohms
        self._l = config.inductance_henries
        self._c = config.capacitance_farads
        # PowerSupplyConfig rejects non-positive values but cannot see NaN
        # or inf (both compare False against 0); a NaN here would silently
        # turn every derived quantity into NaN instead of an error.
        for name, value in (
            ("resistance_ohms", self._r),
            ("inductance_henries", self._l),
            ("capacitance_farads", self._c),
            ("clock_hz", config.clock_hz),
        ):
            if not math.isfinite(value):
                raise CircuitError(f"{name} must be finite, got {value!r}")

    # ------------------------------------------------------------------
    # Section 2.1.1 -- resonant frequency and damping classification
    # ------------------------------------------------------------------
    @property
    def natural_angular_frequency(self) -> float:
        """Undamped natural angular frequency ``omega0 = 1/sqrt(LC)``."""
        return 1.0 / math.sqrt(self._l * self._c)

    @property
    def resonant_frequency_hz(self) -> float:
        """Resonant frequency ``f0 = 1 / (2 pi sqrt(LC))``."""
        return self.natural_angular_frequency / (2.0 * math.pi)

    @property
    def resonant_period_cycles(self) -> int:
        """Resonant period expressed in whole processor cycles."""
        return round(self.config.clock_hz / self.resonant_frequency_hz)

    @property
    def is_underdamped(self) -> bool:
        """True when ``R^2 < 4 L / C`` so the circuit oscillates."""
        return self._r * self._r < 4.0 * self._l / self._c

    @property
    def damping_coefficient(self) -> float:
        """Exponential damping coefficient ``alpha = R / (2 L)`` (nepers/s).

        Equal to the paper's damping rate ``f0 pi / Q``.
        """
        return self._r / (2.0 * self._l)

    @property
    def damped_angular_frequency(self) -> float:
        """Ringing angular frequency ``sqrt(omega0^2 - alpha^2)``."""
        if not self.is_underdamped:
            raise CircuitError(
                "damped frequency is undefined: circuit is not underdamped"
            )
        omega0 = self.natural_angular_frequency
        alpha = self.damping_coefficient
        return math.sqrt(omega0 * omega0 - alpha * alpha)

    # ------------------------------------------------------------------
    # Section 2.1.2 -- quality factor and resonance band
    # ------------------------------------------------------------------
    @property
    def quality_factor(self) -> float:
        """``Q = 2 pi f0 L / R`` (equivalently ``sqrt(L/C)/R``)."""
        return 2.0 * math.pi * self.resonant_frequency_hz * self._l / self._r

    @property
    def bandwidth_hz(self) -> float:
        """Half-power bandwidth ``B = f0 / Q``."""
        return self.resonant_frequency_hz / self.quality_factor

    @property
    def band(self) -> ResonanceBand:
        """Exact half-power resonance band (DeCarlo & Lin, ref [4])."""
        if not self.is_underdamped:
            raise CircuitError("resonance band is undefined for a damped circuit")
        f0 = self.resonant_frequency_hz
        q = self.quality_factor
        centre = math.sqrt(1.0 + 1.0 / (4.0 * q * q))
        half = 1.0 / (2.0 * q)
        low_hz = f0 * (centre - half)
        high_hz = f0 * (centre + half)
        clock = self.config.clock_hz
        return ResonanceBand(
            low_hz=low_hz,
            high_hz=high_hz,
            min_period_cycles=round(clock / high_hz),
            max_period_cycles=round(clock / low_hz),
        )

    # ------------------------------------------------------------------
    # Section 2.1.3 -- dissipation
    # ------------------------------------------------------------------
    @property
    def amplitude_decay_per_period(self) -> float:
        """Fraction of ringing *amplitude* remaining after one resonant period.

        ``exp(-alpha T0)``: 0.33 for the Table 1 supply (the paper's "66 %
        dissipation per period") and about 0.61 for the Section 2 example
        ("40 % dissipation").
        """
        period = 1.0 / self.resonant_frequency_hz
        return math.exp(-self.damping_coefficient * period)

    @property
    def dissipation_per_period(self) -> float:
        """Fraction of ringing amplitude lost per resonant period."""
        return 1.0 - self.amplitude_decay_per_period

    def decay_cycles(self, fraction: float) -> int:
        """Processor cycles of quiet needed for ringing to decay to ``fraction``.

        Used to size the second-level response time: Section 5.2 requires
        enough quiet cycles for variations to dissipate the equivalent of one
        resonant event.
        """
        if not 0 < fraction < 1:
            raise CircuitError("decay fraction must be in (0, 1)")
        seconds = -math.log(fraction) / self.damping_coefficient
        return math.ceil(seconds * self.config.clock_hz)

    # ------------------------------------------------------------------
    # Figure 1(c) -- impedance seen by the CPU current source
    # ------------------------------------------------------------------
    def impedance_ohms(
        self, frequency_hz: Union[float, Sequence[float], np.ndarray]
    ) -> Union[float, np.ndarray]:
        """|Z(f)| of the series RL branch in parallel with the die capacitor.

        This is the transfer impedance from CPU current variation to die
        voltage variation; it peaks near the resonant frequency
        (approximately ``L / (R C)`` at the peak for high Q).
        """
        frequency = np.asarray(frequency_hz, dtype=float)
        omega = 2.0 * np.pi * frequency
        z_rl = self._r + 1j * omega * self._l
        with np.errstate(divide="ignore", invalid="ignore"):
            z_c = np.where(omega > 0, 1.0 / (1j * omega * self._c + 1e-300), np.inf)
            z = z_rl * z_c / (z_rl + z_c)
            magnitude = np.abs(np.where(omega > 0, z, z_rl))
        if np.isscalar(frequency_hz) or getattr(frequency_hz, "ndim", 1) == 0:
            return float(magnitude)
        return magnitude

    @property
    def peak_impedance_ohms(self) -> float:
        """Approximate impedance at the resonant peak, ``L / (R C)``."""
        return self._l / (self._r * self._c)

    def summary(self) -> dict:
        """Return the headline characteristics as a plain dictionary."""
        band = self.band
        return {
            "resonant_frequency_hz": self.resonant_frequency_hz,
            "resonant_period_cycles": self.resonant_period_cycles,
            "quality_factor": self.quality_factor,
            "band_low_hz": band.low_hz,
            "band_high_hz": band.high_hz,
            "band_min_period_cycles": band.min_period_cycles,
            "band_max_period_cycles": band.max_period_cycles,
            "damping_rate_nepers_per_s": self.damping_coefficient,
            "dissipation_per_period": self.dissipation_per_period,
            "is_underdamped": self.is_underdamped,
        }


def impedance_sweep(
    config: PowerSupplyConfig,
    low_hz: float,
    high_hz: float,
    points: int = 200,
) -> "tuple[np.ndarray, np.ndarray]":
    """Sweep |Z(f)| over ``[low_hz, high_hz]`` (regenerates Figure 1(c)).

    Returns ``(frequencies_hz, impedance_ohms)`` arrays.
    """
    if not 0 < low_hz < high_hz:
        raise CircuitError("impedance sweep requires 0 < low_hz < high_hz")
    analysis = RLCAnalysis(config)
    frequencies = np.linspace(low_hz, high_hz, points)
    return frequencies, np.asarray(analysis.impedance_ohms(frequencies))
