"""Heun-formula (improved Euler) integration of the Figure 1(b) circuit.

The paper solves the power-supply state equations with the Heun Formula
(Section 4.1, citing Boyce & DiPrima); we do the same.  State variables are
the die-node voltage deviation ``v`` (across the on-die capacitor) and the
inductor current ``i_l`` flowing from the supply to the die:

    C dv/dt   = i_l - i_cpu(t)
    L di_l/dt = -v - R i_l

With a constant CPU current the steady state is ``v = -R i_cpu`` (the IR
drop).  Following Section 4.1 the IR drop is unrelated to inductive noise and
is subtracted out by :class:`repro.power.supply.PowerSupply`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PowerSupplyConfig
from repro.errors import ConfigurationError

__all__ = ["CircuitState", "HeunIntegrator"]


@dataclass
class CircuitState:
    """Instantaneous circuit state: capacitor voltage and inductor current."""

    voltage: float = 0.0
    inductor_current: float = 0.0

    def copy(self) -> "CircuitState":
        return CircuitState(self.voltage, self.inductor_current)


class HeunIntegrator:
    """Steps the RLC state one processor cycle at a time.

    The CPU current is treated as piecewise constant over each step, matching
    the cycle-granularity current reported by the architectural simulator.
    ``substeps`` subdivides each cycle for extra accuracy; the default of 1
    matches the paper's cycle-level solver and is accurate to well under a
    percent for the Table 1 circuit (omega0 * dt is about 0.06).
    """

    def __init__(self, config: PowerSupplyConfig, substeps: int = 1):
        if substeps < 1:
            raise ConfigurationError("substeps must be at least 1")
        self.config = config
        self.substeps = substeps
        self._dt = config.cycle_seconds / substeps
        self._inv_c = 1.0 / config.capacitance_farads
        self._inv_l = 1.0 / config.inductance_henries
        self._r = config.resistance_ohms
        self.state = CircuitState()

    def reset(self, cpu_current: float = 0.0) -> None:
        """Reset to the steady state for a constant ``cpu_current``.

        Steady state has the full CPU current supplied through the inductor
        and the capacitor voltage at the IR droop.
        """
        self.state = CircuitState(
            voltage=-self._r * cpu_current, inductor_current=cpu_current
        )

    def coefficients(self) -> "tuple[float, float, float, float, int]":
        """``(dt, 1/C, 1/L, R, substeps)`` exactly as the step loop uses them.

        Public access for the vectorized cycle kernel
        (``repro.core.kernel``), which must replay the recurrence with
        bit-identical constants rather than re-deriving them from the
        config (a second ``1.0 / C`` is equal here, but the contract is
        "the same float objects the scalar loop multiplies by").
        """
        return self._dt, self._inv_c, self._inv_l, self._r, self.substeps

    def _derivatives(self, voltage: float, inductor_current: float, cpu_current: float):
        dv = (inductor_current - cpu_current) * self._inv_c
        di = (-voltage - self._r * inductor_current) * self._inv_l
        return dv, di

    def step(self, cpu_current: float) -> float:
        """Advance one processor cycle with the given CPU current (amps).

        Returns the raw die-node voltage deviation (IR drop *not* removed).
        """
        v = self.state.voltage
        i_l = self.state.inductor_current
        dt = self._dt
        for _ in range(self.substeps):
            dv1, di1 = self._derivatives(v, i_l, cpu_current)
            v_pred = v + dt * dv1
            i_pred = i_l + dt * di1
            dv2, di2 = self._derivatives(v_pred, i_pred, cpu_current)
            v += 0.5 * dt * (dv1 + dv2)
            i_l += 0.5 * dt * (di1 + di2)
        self.state.voltage = v
        self.state.inductor_current = i_l
        return v
