"""Design-time calibration of resonance-tuning parameters (Section 2.1.3).

The paper determines two quantities by circuit simulation (Spice/Matlab in
the paper; our Heun-based :class:`~repro.power.supply.PowerSupply` here):

* the **resonant current variation threshold** M -- the largest peak-to-peak
  current variation that never violates the noise margin even when repeated
  indefinitely inside the resonance band, and
* the **maximum repetition tolerance** -- how many half-waves of excitation
  above M the supply withstands before the first violation (counted in half
  waves: a full period counts as 2).

Both searches exploit the linearity of the Figure 1(b) circuit: the response
to a variation about any mean equals the response to the same variation about
zero, so all calibration waveforms are zero-mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import PowerSupplyConfig
from repro.errors import CalibrationError
from repro.power.rlc import RLCAnalysis
from repro.power.supply import PowerSupply
from repro.power.waveforms import burst, square_wave

__all__ = [
    "CalibrationResult",
    "sustained_wave_violates",
    "max_tolerable_variation",
    "resonant_current_variation_threshold",
    "max_repetition_tolerance",
    "quiet_cycles_for_event_decay",
    "calibrate",
]

_SETTLE_PERIODS = 40
_LEAD_CYCLES = 8


def _period_cycles(config: PowerSupplyConfig, frequency_hz: float) -> float:
    return config.clock_hz / frequency_hz


def sustained_wave_violates(
    config: PowerSupplyConfig,
    frequency_hz: float,
    amplitude_pp: float,
    n_periods: int = _SETTLE_PERIODS,
) -> bool:
    """True if a sustained square wave at this frequency/amplitude violates."""
    period = _period_cycles(config, frequency_hz)
    n_cycles = _LEAD_CYCLES + math.ceil(n_periods * period)
    wave = square_wave(n_cycles, period, amplitude_pp, mean=0.0, start=_LEAD_CYCLES)
    supply = PowerSupply(config)
    supply.run(wave)
    return supply.violation_cycles > 0


def max_tolerable_variation(
    config: PowerSupplyConfig,
    frequency_hz: float,
    tolerance_amps: float = 0.25,
    n_periods: int = _SETTLE_PERIODS,
) -> float:
    """Largest sustained peak-to-peak square-wave amplitude that never violates.

    Bisection between zero and a generous upper bound derived from the
    resonant peak impedance.  At the band edges of the Section 2 example this
    is the paper's "13 amps"; at the resonant frequency it is the resonant
    current variation threshold.
    """
    if tolerance_amps <= 0:
        raise CalibrationError("tolerance_amps must be positive")
    analysis = RLCAnalysis(config)
    margin = config.noise_margin_volts
    high = 8.0 * margin / analysis.impedance_ohms(frequency_hz)
    if not sustained_wave_violates(config, frequency_hz, high, n_periods):
        raise CalibrationError(
            "upper bisection bound does not violate; the supply absorbs all"
            f" variations at {frequency_hz:.3g} Hz"
        )
    low = 0.0
    while high - low > tolerance_amps:
        mid = 0.5 * (low + high)
        if sustained_wave_violates(config, frequency_hz, mid, n_periods):
            high = mid
        else:
            low = mid
    return low


def resonant_current_variation_threshold(
    config: PowerSupplyConfig, tolerance_amps: float = 0.25
) -> float:
    """The threshold M: repeated variations below M never violate (Section 2.1.3).

    Measured at the resonant frequency, where the supply is most sensitive,
    and reported to whole amps (floor) because the current sensors read to
    the nearest amp.
    """
    analysis = RLCAnalysis(config)
    amps = max_tolerable_variation(
        config, analysis.resonant_frequency_hz, tolerance_amps
    )
    return float(math.floor(amps))


def max_repetition_tolerance(
    config: PowerSupplyConfig,
    amplitude_pp: float,
    frequency_hz: "float | None" = None,
    max_half_waves: int = 64,
) -> int:
    """Half-waves of excitation at ``amplitude_pp`` until the first violation.

    Reproduces the paper's procedure: excite the supply with a square wave at
    the resonant frequency and count half-waves (a full period counts as 2)
    until the noise margin is first violated.  Raises
    :class:`CalibrationError` if even ``max_half_waves`` half-waves never
    violate (the amplitude is below the threshold).
    """
    analysis = RLCAnalysis(config)
    if frequency_hz is None:
        frequency_hz = analysis.resonant_frequency_hz
    period = _period_cycles(config, frequency_hz)
    # One long burst suffices: the first violation cycle tells us how many
    # half-waves had been applied when the margin was first crossed.
    n_cycles = _LEAD_CYCLES + math.ceil((max_half_waves + 4) * period / 2.0)
    wave = burst(
        n_cycles, period, amplitude_pp, mean=0.0, start=_LEAD_CYCLES,
        half_waves=max_half_waves,
    )
    supply = PowerSupply(config)
    supply.run(wave)
    if supply.first_violation_cycle is None:
        raise CalibrationError(
            f"no violation within {max_half_waves} half-waves at"
            f" {amplitude_pp:.3g} A peak-to-peak"
        )
    elapsed = supply.first_violation_cycle - _LEAD_CYCLES
    half_waves = math.floor(elapsed / (period / 2.0)) + 1
    return max(1, half_waves)


def quiet_cycles_for_event_decay(
    config: PowerSupplyConfig, tolerance: int, safety_cycles: int = 3
) -> int:
    """Quiet cycles for ringing to decay the equivalent of one event count.

    Section 5.2 sizes the second-level response this way: enough inactivity
    that residual variations dissipate an amount equivalent to reducing the
    resonant event count by one.  We take the amplitude built up over
    ``tolerance`` half-waves and find the free-decay time back to the
    amplitude after ``tolerance - 1`` half-waves, plus a small safety margin.
    """
    if tolerance < 2:
        raise CalibrationError("tolerance must be at least 2")
    analysis = RLCAnalysis(config)
    period_s = 1.0 / analysis.resonant_frequency_hz
    rho = math.exp(-analysis.damping_coefficient * period_s / 2.0)
    built_full = 1.0 - rho ** tolerance
    built_less = 1.0 - rho ** (tolerance - 1)
    fraction = built_less / built_full
    return analysis.decay_cycles(fraction) + safety_cycles


@dataclass(frozen=True)
class CalibrationResult:
    """Calibrated resonance-tuning parameters for one power supply."""

    resonant_frequency_hz: float
    resonant_period_cycles: int
    band_min_period_cycles: int
    band_max_period_cycles: int
    threshold_amps: float
    band_edge_tolerable_amps: float
    max_repetition_tolerance: int
    second_level_response_cycles: int


def calibrate(
    config: PowerSupplyConfig,
    tolerance_amps: float = 0.25,
) -> CalibrationResult:
    """Run the full Section 2.1.3 calibration for a power supply.

    The repetition tolerance is measured with the largest variation tolerable
    at the band edges (the paper's procedure: "repetitions of current
    variations of magnitude 13 amps" where 13 A was the band-edge limit).
    """
    analysis = RLCAnalysis(config)
    band = analysis.band
    threshold = resonant_current_variation_threshold(config, tolerance_amps)
    edge_low = max_tolerable_variation(config, band.low_hz, tolerance_amps)
    edge_high = max_tolerable_variation(config, band.high_hz, tolerance_amps)
    edge_amps = float(math.floor(min(edge_low, edge_high)))
    # The paper measures the repetition tolerance with the band-edge
    # amplitude; for wide, low-Q bands that amplitude can sit below the
    # centre-frequency threshold and never violate, so fall back to just
    # above the threshold.
    try:
        tolerance = max_repetition_tolerance(config, edge_amps)
    except CalibrationError:
        tolerance = max_repetition_tolerance(config, threshold + 2.0)
    return CalibrationResult(
        resonant_frequency_hz=analysis.resonant_frequency_hz,
        resonant_period_cycles=analysis.resonant_period_cycles,
        band_min_period_cycles=band.min_period_cycles,
        band_max_period_cycles=band.max_period_cycles,
        threshold_amps=threshold,
        band_edge_tolerable_amps=edge_amps,
        max_repetition_tolerance=tolerance,
        second_level_response_cycles=quiet_cycles_for_event_decay(config, tolerance),
    )
