"""Closed-form responses of the Figure 1(b) circuit.

Exact analytic solutions used to cross-validate the Heun integrator and to
reason about detector thresholds without simulation:

* :func:`step_response` -- the IR-corrected voltage deviation after a
  current step, solved exactly for the underdamped second-order system;
* :func:`sine_steady_state_amplitude` -- steady-state amplitude of the
  reported voltage under sinusoidal current excitation (phasor analysis);
* :func:`sustained_square_violation_amplitude` -- the smallest sustained
  square-wave amplitude whose fundamental alone reaches the noise margin,
  an analytic approximation of the resonant current variation threshold;
* :func:`ring_amplitude_after` -- free-decay amplitude scaling.

Derivation sketch for the step: with the voltage source shorted, the
reported deviation is ``v_C + R i`` and its Laplace transform for a current
step of height ``dI`` is ``dI (R s + R^2/L - 1/C) / (s^2 + 2 a s + w0^2)``,
whose inverse for an underdamped circuit is the damped sinusoid implemented
below.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import PowerSupplyConfig
from repro.errors import CircuitError
from repro.power.rlc import RLCAnalysis

__all__ = [
    "step_response",
    "step_response_peak",
    "sine_steady_state_amplitude",
    "sustained_square_violation_amplitude",
    "ring_amplitude_after",
]


def step_response(
    config: PowerSupplyConfig, delta_i_amps: float, t_seconds: np.ndarray
) -> np.ndarray:
    """Exact IR-corrected voltage deviation after a current step at t = 0."""
    analysis = RLCAnalysis(config)
    if not analysis.is_underdamped:
        raise CircuitError("closed form implemented for underdamped circuits")
    r = config.resistance_ohms
    l = config.inductance_henries
    c = config.capacitance_farads
    alpha = analysis.damping_coefficient
    omega_d = analysis.damped_angular_frequency
    t = np.asarray(t_seconds, dtype=float)
    a = r
    b = r * r / l - 1.0 / c
    envelope = np.exp(-alpha * t)
    return delta_i_amps * envelope * (
        a * np.cos(omega_d * t) + ((b - a * alpha) / omega_d) * np.sin(omega_d * t)
    )


def step_response_peak(config: PowerSupplyConfig, delta_i_amps: float) -> float:
    """Magnitude of the largest excursion after a current step.

    Evaluated on a dense grid over the first two damped periods (the peak
    always falls in the first period; the margin of a second period is for
    numerical comfort).
    """
    analysis = RLCAnalysis(config)
    period = 2.0 * math.pi / analysis.damped_angular_frequency
    t = np.linspace(0.0, 2.0 * period, 4096)
    return float(np.max(np.abs(step_response(config, delta_i_amps, t))))


def sine_steady_state_amplitude(
    config: PowerSupplyConfig, frequency_hz: float, amplitude_pp_amps: float
) -> float:
    """Steady-state amplitude (volts, zero-to-peak) of the reported voltage.

    The reported deviation is ``v_C + R i_cpu``; in phasor terms its transfer
    from the CPU current is ``R - Z(jw)``, where Z is the driving-point
    impedance.  At DC this is zero (a constant current reports no noise), at
    resonance it is nearly the full peak impedance.
    """
    if frequency_hz <= 0:
        raise CircuitError("frequency must be positive")
    r = config.resistance_ohms
    l = config.inductance_henries
    c = config.capacitance_farads
    omega = 2.0 * math.pi * frequency_hz
    z_rl = r + 1j * omega * l
    z_c = 1.0 / (1j * omega * c)
    z = z_rl * z_c / (z_rl + z_c)
    i_amplitude = 0.5 * amplitude_pp_amps
    return float(abs(r - z) * i_amplitude)


def sustained_square_violation_amplitude(config: PowerSupplyConfig) -> float:
    """Analytic estimate of the resonant current variation threshold.

    A sustained square wave of peak-to-peak amplitude X at the resonant
    frequency has a fundamental of amplitude ``(2/pi) X``; the threshold is
    the X whose fundamental's steady-state response just reaches the noise
    margin.  Higher harmonics fall outside the band and add little, so this
    slightly *underestimates* the simulated threshold.
    """
    analysis = RLCAnalysis(config)
    f0 = analysis.resonant_frequency_hz
    # Response volts per amp of square-wave peak-to-peak amplitude: the
    # fundamental of a p-p X square wave is a p-p (4/pi) X sine.
    response_per_pp_amp = sine_steady_state_amplitude(config, f0, 4.0 / math.pi)
    return config.noise_margin_volts / response_per_pp_amp


def ring_amplitude_after(
    config: PowerSupplyConfig, initial_amplitude: float, cycles: int
) -> float:
    """Free-decay ring amplitude after ``cycles`` quiet processor cycles."""
    analysis = RLCAnalysis(config)
    seconds = cycles * config.cycle_seconds
    return initial_amplitude * math.exp(-analysis.damping_coefficient * seconds)
