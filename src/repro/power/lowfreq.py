"""Two-stage power-distribution model with low-frequency resonance (Sec. 2.2).

Besides the medium-frequency peak (die-to-package inductance against on-die
decoupling capacitance), real packages show a *low-frequency* impedance peak
from the much larger off-chip inductance resonating against the on-chip /
package bulk capacitance -- typically at a few megahertz.  This module adds
that second stage:

    supply --- R1 - L1 ---+--- R2 - L2 ---+---> CPU current source
                          |               |
                          C1             C2
                          |               |
                         gnd             gnd

Stage 1 (R1, L1, C1) is the off-chip loop; stage 2 (R2, L2, C2) is the
Figure 1(b) circuit of the main model.  The state equations are integrated
with the same Heun formula, and the IR drop through both resistances is
subtracted as in Section 4.1.  Resonance tuning applies unchanged: the
detector simply needs the low-frequency band's (much longer) half-periods,
where its timing slack is even more generous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.config import PowerSupplyConfig
from repro.errors import ConfigurationError

__all__ = ["TwoStageSupplyConfig", "TwoStageSupply", "two_stage_impedance"]


@dataclass(frozen=True)
class TwoStageSupplyConfig:
    """Off-chip stage parameters plus the on-die stage (a PowerSupplyConfig)."""

    die_stage: PowerSupplyConfig = PowerSupplyConfig()
    #: defaults give a low-frequency peak near 1.1 MHz of about 1 mOhm --
    #: "fairly small" relative to the medium-frequency peak, as Section 2.2
    #: describes for current technology
    offchip_resistance_ohms: float = 0.47e-3
    offchip_inductance_henries: float = 0.1e-9
    bulk_capacitance_farads: float = 200e-6

    def __post_init__(self) -> None:
        if self.offchip_resistance_ohms <= 0:
            raise ConfigurationError("offchip_resistance_ohms must be positive")
        if self.offchip_inductance_henries <= 0:
            raise ConfigurationError("offchip_inductance_henries must be positive")
        if self.bulk_capacitance_farads <= 0:
            raise ConfigurationError("bulk_capacitance_farads must be positive")

    @property
    def low_frequency_hz(self) -> float:
        """Approximate low-frequency resonance: off-chip L against bulk C."""
        return 1.0 / (
            2.0
            * np.pi
            * np.sqrt(self.offchip_inductance_henries * self.bulk_capacitance_farads)
        )

    @property
    def low_frequency_period_cycles(self) -> int:
        return round(self.die_stage.clock_hz / self.low_frequency_hz)

    def low_frequency_band_half_periods(self, width_fraction: float = 0.15):
        """A band of half-periods around the low-frequency resonance.

        The analytic half-power band of the coupled circuit is messy; a
        +/-``width_fraction`` window around the peak is what a designer
        would configure, subsampled so the detector needs a practical
        number of adders.
        """
        period = self.low_frequency_period_cycles
        half = period // 2
        low = round(half * (1.0 - width_fraction))
        high = round(half * (1.0 + width_fraction))
        stride = max(1, (high - low) // 12)
        return range(low, high + 1, stride)


class TwoStageSupply:
    """Cycle-level simulation of the two-stage network."""

    def __init__(
        self,
        config: TwoStageSupplyConfig,
        initial_current: float = 0.0,
        record: bool = False,
    ):
        self.config = config
        die = config.die_stage
        self._r1 = config.offchip_resistance_ohms
        self._l1 = config.offchip_inductance_henries
        self._c1 = config.bulk_capacitance_farads
        self._r2 = die.resistance_ohms
        self._l2 = die.inductance_henries
        self._c2 = die.capacitance_farads
        self._dt = die.cycle_seconds
        self._margin = die.noise_margin_volts
        self._record = record
        self.currents: List[float] = []
        self.voltages: List[float] = []
        self.cycle = 0
        self.violation_cycles = 0
        self.first_violation_cycle = None
        self.reset(initial_current)

    def reset(self, current: float = 0.0) -> None:
        """Steady state for a constant current (both inductors carrying it)."""
        self._v1 = -self._r1 * current
        self._v2 = -(self._r1 + self._r2) * current
        self._i1 = current
        self._i2 = current
        self.cycle = 0
        self.violation_cycles = 0
        self.first_violation_cycle = None
        self.currents = []
        self.voltages = []

    def _derivatives(self, v1, v2, i1, i2, cpu):
        dv1 = (i1 - i2) / self._c1
        dv2 = (i2 - cpu) / self._c2
        di1 = (-v1 - self._r1 * i1) / self._l1
        di2 = (v1 - v2 - self._r2 * i2) / self._l2
        return dv1, dv2, di1, di2

    def step(self, cpu_current: float) -> float:
        """Advance one cycle; return the die-node deviation, IR-corrected."""
        dt = self._dt
        v1, v2, i1, i2 = self._v1, self._v2, self._i1, self._i2
        d1 = self._derivatives(v1, v2, i1, i2, cpu_current)
        predicted = (
            v1 + dt * d1[0],
            v2 + dt * d1[1],
            i1 + dt * d1[2],
            i2 + dt * d1[3],
        )
        d2 = self._derivatives(*predicted, cpu_current)
        self._v1 = v1 + 0.5 * dt * (d1[0] + d2[0])
        self._v2 = v2 + 0.5 * dt * (d1[1] + d2[1])
        self._i1 = i1 + 0.5 * dt * (d1[2] + d2[2])
        self._i2 = i2 + 0.5 * dt * (d1[3] + d2[3])
        voltage = self._v2 + (self._r1 + self._r2) * cpu_current
        if abs(voltage) > self._margin:
            self.violation_cycles += 1
            if self.first_violation_cycle is None:
                self.first_violation_cycle = self.cycle
        if self._record:
            self.currents.append(cpu_current)
            self.voltages.append(voltage)
        self.cycle += 1
        return voltage

    def run(self, currents) -> np.ndarray:
        return np.asarray([self.step(c) for c in currents])

    @property
    def violation_fraction(self) -> float:
        return self.violation_cycles / self.cycle if self.cycle else 0.0


def two_stage_impedance(
    config: TwoStageSupplyConfig, frequencies_hz: np.ndarray
) -> np.ndarray:
    """|Z(f)| seen by the CPU current source (two peaks: Figure-1(c)-like
    medium-frequency peak plus the Section 2.2 low-frequency peak)."""
    omega = 2.0 * np.pi * np.asarray(frequencies_hz, dtype=float)
    s = 1j * omega
    z_l1 = config.offchip_resistance_ohms + s * config.offchip_inductance_henries
    z_c1 = 1.0 / (s * config.bulk_capacitance_farads)
    die = config.die_stage
    z_l2 = die.resistance_ohms + s * die.inductance_henries
    z_c2 = 1.0 / (s * die.capacitance_farads)
    z_a = z_l1 * z_c1 / (z_l1 + z_c1)
    z_upstream = z_a + z_l2
    z_b = z_upstream * z_c2 / (z_upstream + z_c2)
    return np.abs(z_b)
