"""Brute-force reference implementation of resonant-event detection.

:class:`ReferenceDetector` re-derives everything
:class:`~repro.core.detector.ResonanceDetector` computes from the Section
3.1 specification directly, sharing none of its data structures:

* every quarter-period comparison literally re-sums ``2 q`` raw samples
  from a plain Python list each cycle -- no cumulative-sum register, no
  ring buffer, no shared adders;
* event histories are unbounded per-cycle boolean lists -- no one-bit
  shift registers or power-of-two masks; the hardware register length
  enters only as an explicit age cutoff in the window arithmetic;
* chain tracing and consecutive-cycle deduplication (Section 3.1.2/3.1.3)
  walk those lists directly.

Equivalence contract
--------------------
On *exactly representable* traces -- any stream whose samples and partial
sums are exact binary floats, which covers the hardware's whole-amp sensor
reports and every dyadic-rational grid the fuzz strategies generate -- the
reference and the optimized detector must agree **bit for bit** on every
emitted event: cycle, polarity, count and the deduplicated chain.  On
arbitrary floats the two sum orders may differ in the last ulp and a
comparison sitting exactly on a threshold could flip; the differential
suite therefore fuzzes on exact grids, where any disagreement is a real
bug in one of the implementations (this is how the cumulative-sum register
is allowed to stay an optimization rather than a semantic).

The reference is deliberately slow (O(band width x period) per cycle) and
must never be imported by production code.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.detector import COUNTER_CAP, Polarity, ResonantEvent
from repro.errors import ConfigurationError, SimulationError

__all__ = ["ReferenceDetector"]


class ReferenceDetector:
    """Specification-direct resonant-event detector (test oracle only).

    Constructor arguments and validation mirror
    :class:`~repro.core.detector.ResonanceDetector` exactly so the two can
    be built from the same fuzzed configuration.
    """

    def __init__(
        self,
        half_periods: Sequence[int],
        threshold_amps: float,
        max_repetition_tolerance: int,
        chain_window_slack: int = 4,
        quarter_periods: Optional[Sequence[int]] = None,
    ):
        if not half_periods:
            raise ConfigurationError("half_periods must be non-empty")
        if threshold_amps <= 0:
            raise ConfigurationError("threshold_amps must be positive")
        if max_repetition_tolerance < 2:
            raise ConfigurationError("max_repetition_tolerance must be at least 2")
        self.half_periods = sorted(set(int(h) for h in half_periods))
        if self.half_periods[0] < 2:
            raise ConfigurationError("half periods must be at least 2 cycles")
        if chain_window_slack < 0:
            raise ConfigurationError("chain_window_slack must be non-negative")
        self.threshold_amps = threshold_amps
        self.max_repetition_tolerance = max_repetition_tolerance
        self._h_min = self.half_periods[0]
        self._h_max = self.half_periods[-1]
        self._chain_slack = min(chain_window_slack, self._h_min - 1)
        if quarter_periods is None:
            self._quarters = sorted({h // 2 for h in self.half_periods})
        else:
            self._quarters = sorted({int(q) for q in quarter_periods})
            if self._quarters[0] < 1:
                raise ConfigurationError("quarter periods must be >= 1")
        self.register_length = max_repetition_tolerance * self._h_max
        # Raw per-cycle state: the full trace and one boolean list per
        # polarity, both indexed by cycle number.
        self._trace: List[float] = []
        self._event_bits: Dict[Polarity, List[bool]] = {
            Polarity.HIGH_LOW: [],
            Polarity.LOW_HIGH: [],
        }
        self.last_event: Optional[ResonantEvent] = None
        self.total_events = 0
        self.nonfinite_samples = 0
        self._last_finite_amps = 0.0

    # ------------------------------------------------------------------
    def observe(self, cycle: int, sensed_current_amps: float) -> Optional[ResonantEvent]:
        """Feed one cycle of sensed current; returns a new event, if any."""
        if cycle != len(self._trace):
            raise SimulationError(
                f"reference detector must observe every cycle (got {cycle}, "
                f"expected {len(self._trace)})"
            )
        if not math.isfinite(sensed_current_amps):
            # Same hold-last-finite policy as the optimized detector.
            self.nonfinite_samples = min(self.nonfinite_samples + 1, COUNTER_CAP)
            sensed_current_amps = self._last_finite_amps
        else:
            self._last_finite_amps = sensed_current_amps
        self._trace.append(sensed_current_amps)
        n = len(self._trace)

        best_magnitude = 0.0
        polarity: Optional[Polarity] = None
        for quarter in self._quarters:
            if n < 2 * quarter:
                continue
            recent = sum(self._trace[n - quarter : n])
            previous = sum(self._trace[n - 2 * quarter : n - quarter])
            diff = recent - previous
            threshold = 0.5 * self.threshold_amps * quarter
            magnitude = abs(diff)
            if magnitude >= threshold and magnitude / quarter > best_magnitude:
                best_magnitude = magnitude / quarter
                polarity = Polarity.LOW_HIGH if diff > 0 else Polarity.HIGH_LOW

        self._event_bits[Polarity.HIGH_LOW].append(polarity is Polarity.HIGH_LOW)
        self._event_bits[Polarity.LOW_HIGH].append(polarity is Polarity.LOW_HIGH)
        if polarity is None:
            return None

        chain = self._trace_chain(cycle, polarity)
        event = ResonantEvent(
            cycle=cycle, polarity=polarity, count=len(chain),
            chain_cycles=tuple(chain),
        )
        self.last_event = event
        self.total_events = min(self.total_events + 1, COUNTER_CAP)
        return event

    # ------------------------------------------------------------------
    # Event-history queries, written against the plain boolean lists but
    # honouring the hardware register's finite length as an age cutoff.
    # ------------------------------------------------------------------
    def _has_event_at(self, polarity: Polarity, cycle: int, now: int) -> bool:
        if cycle < 0 or cycle > now:
            return False
        if now - cycle >= self.register_length:
            return False
        bits = self._event_bits[polarity]
        return cycle < len(bits) and bits[cycle]

    def _latest_event_in(
        self, polarity: Polarity, start_cycle: int, end_cycle: int, now: int
    ) -> Optional[int]:
        lo = max(start_cycle, now - self.register_length + 1, 0)
        bits = self._event_bits[polarity]
        for cycle in range(min(end_cycle, now), lo - 1, -1):
            if cycle < len(bits) and bits[cycle]:
                return cycle
        return None

    def _run_start(self, polarity: Polarity, cycle: int, now: int) -> int:
        """First cycle of the consecutive-event run containing ``cycle``
        (the Section 3.1.3 dedup rule: a run is one physical variation)."""
        if not self._has_event_at(polarity, cycle, now):
            raise SimulationError(f"no event at cycle {cycle}")
        start = cycle
        while start > 0 and self._has_event_at(polarity, start - 1, now):
            start -= 1
        return start

    def _trace_chain(self, cycle: int, polarity: Polarity) -> List[int]:
        chain = [cycle]
        reference = cycle
        expected = polarity.opposite
        while len(chain) <= self.max_repetition_tolerance:
            found = self._latest_event_in(
                expected,
                reference - self._h_max,
                reference - self._h_min + self._chain_slack,
                cycle,
            )
            if found is None:
                break
            chain.append(found)
            reference = self._run_start(expected, found, cycle)
            expected = expected.opposite
        return chain

    # ------------------------------------------------------------------
    def current_count(self, cycle: int) -> int:
        """Section 5.1.2 count semantics, identical to the optimized path."""
        event = self.last_event
        if event is None:
            return 0
        if cycle - event.cycle > self._h_max:
            return 0
        return sum(
            1 for c in event.chain_cycles if cycle - c < self.register_length
        )

    @property
    def band_half_period_range(self) -> Tuple[int, int]:
        return self._h_min, self._h_max

    @property
    def adder_count(self) -> int:
        return len(self._quarters)
