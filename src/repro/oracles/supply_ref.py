"""Direct-convolution reference for the Heun-integrated power supply.

The Heun integrator applied to the linear Figure 1(b) circuit with a
piecewise-constant CPU current is an exact linear recurrence

    x[k+1] = A x[k] + B u[k],        x = (v_C, i_L)

whose per-substep matrices follow in closed form from one Heun step on
``x' = M x + N u``:  ``A1 = I + dt M + dt^2/2 M^2`` and
``B1 = dt N + dt^2/2 M N`` (the corrector expanded for constant ``u``).
:class:`ConvolutionSupply` composes the substeps into per-cycle matrices
and then solves the whole run at once by superposition: a free transient
``A^{k+1} x0`` plus the discrete convolution of the input with the impulse
kernel ``h[j] = (A^j B)_v``.  No state is stepped sample-by-sample, so the
arithmetic path shares nothing with
:class:`~repro.power.integrator.HeunIntegrator` beyond the mathematics.

Tolerance contract
------------------
Both paths compute the same exact recurrence, so differences are rounding
only: the reference must match :class:`~repro.power.supply.PowerSupply`
within ``REFERENCE_RTOL`` of the peak reported voltage over runs of a few
thousand cycles (enforced by the differential fuzz suite).  Against the
true continuous circuit both share the Heun discretization error, which is
why the closed forms in :mod:`repro.power.analytic` (step, sine,
ring-down) provide the second, discretization-sensitive cross-check with
their own documented tolerances.
"""

from __future__ import annotations

import numpy as np

from repro.config import PowerSupplyConfig
from repro.errors import ConfigurationError

__all__ = ["REFERENCE_RTOL", "ConvolutionSupply", "violation_stats"]

#: Maximum |simulated - reference| voltage divergence, as a fraction of the
#: peak |reported voltage| of the run (floored at one noise-margin LSB of
#: absolute slack for all-quiet traces).  Rounding-only disagreement over
#: a few thousand cycles of the Table 1 circuit measures ~1e-12; the bound
#: leaves four orders of magnitude of headroom while still catching any
#: semantic drift, which shows up at the 1e-2..1e0 level.
REFERENCE_RTOL = 1e-8


class ConvolutionSupply:
    """Whole-run power-supply solution by transient + direct convolution.

    Mirrors the :class:`~repro.power.supply.PowerSupply` constructor
    contract (steady-state start at ``initial_current``, IR-drop-corrected
    reported voltage) but exposes only a vectorized :meth:`run`.
    """

    def __init__(
        self,
        config: PowerSupplyConfig,
        initial_current: float = 0.0,
        substeps: int = 1,
    ):
        if substeps < 1:
            raise ConfigurationError("substeps must be at least 1")
        self.config = config
        r = config.resistance_ohms
        dt = config.cycle_seconds / substeps
        m = np.array(
            [
                [0.0, 1.0 / config.capacitance_farads],
                [-1.0 / config.inductance_henries, -r / config.inductance_henries],
            ]
        )
        n_vec = np.array([-1.0 / config.capacitance_farads, 0.0])
        a1 = np.eye(2) + dt * m + 0.5 * dt * dt * (m @ m)
        b1 = dt * n_vec + 0.5 * dt * dt * (m @ n_vec)
        a = np.eye(2)
        b = np.zeros(2)
        for _ in range(substeps):
            a = a1 @ a
            b = a1 @ b + b1
        self._a = a
        self._b = b
        # Steady state for the initial current: capacitor at the IR droop,
        # the full current through the inductor (HeunIntegrator.reset).
        self._x0 = np.array([-r * initial_current, float(initial_current)])

    def run(self, currents) -> np.ndarray:
        """Reported (IR-corrected) voltage for a whole current waveform.

        Returns the same stream ``PowerSupply(config, ...).run(currents)``
        produces, up to rounding (see :data:`REFERENCE_RTOL`).
        """
        u = np.asarray(currents, dtype=float)
        n = len(u)
        if n == 0:
            return np.empty(0)
        kernel = np.empty(n)
        transient = np.empty(n)
        impulse = self._b.copy()  # A^0 B
        free = self._a @ self._x0  # A^1 x0
        for k in range(n):
            kernel[k] = impulse[0]
            transient[k] = free[0]
            if k + 1 < n:
                impulse = self._a @ impulse
                free = self._a @ free
        raw = transient + np.convolve(u, kernel)[:n]
        return raw + self.config.resistance_ohms * u


def violation_stats(voltages, noise_margin_volts: float) -> dict:
    """Margin bookkeeping recomputed from a voltage stream.

    Returns the same counters :class:`~repro.power.supply.PowerSupply`
    accumulates while stepping: cycles beyond the margin, distinct
    violation events (entries into violation), and the first violating
    cycle (None when clean).
    """
    v = np.asarray(voltages, dtype=float)
    violated = np.abs(v) > noise_margin_volts
    entries = int(np.count_nonzero(violated[1:] & ~violated[:-1]))
    if len(violated) and violated[0]:
        entries += 1
    first = int(np.argmax(violated)) if violated.any() else None
    return {
        "violation_cycles": int(np.count_nonzero(violated)),
        "violation_events": entries,
        "first_violation_cycle": first,
    }
