"""Golden-trace fingerprinting for the conformance gate.

A *golden cell* is one pinned workload x configuration simulation whose
per-cycle current, voltage and resonant-event streams are canonically
hashed and committed to ``tests/goldens/goldens.json``.  The simulation
stack is deterministic end to end (seeded trace generation, pure float
arithmetic), so the hashes must be byte-identical across runs, across the
sequential and ``--workers N`` execution backends, and across supported
Python versions -- any drift means a semantic change leaked into a hot
path and every table in EXPERIMENTS.md is suspect until it is explained.

Canonical encoding: floats are rendered with :meth:`float.hex` (exact, no
shortest-repr ambiguity), events as ``cycle:polarity:count`` lines; each
stream is the SHA-256 of the newline-joined lines.  The committed record
also carries small human-readable summary statistics so a diff points at
*what* moved, not just that something did.

``tools/conformance.py`` is the CLI over this module; the pytest suite
checks the sequential path on every run, and CI additionally asserts
sequential == ``--workers 2`` on Python 3.10 and 3.12.
"""

from __future__ import annotations

import json
import pathlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.config import TABLE1_PROCESSOR, TABLE1_SUPPLY, TABLE1_TUNING
from repro.core import CurrentSensor, ResonanceDetector, ResonanceTuningController
from repro.errors import ConfigurationError, SimulationError
from repro.power import PowerSupply, RLCAnalysis
from repro.sim import Simulation
from repro.uarch import Processor, SPEC2K

__all__ = [
    "GOLDEN_CELLS",
    "GOLDEN_SCHEMA_VERSION",
    "GoldenCell",
    "compute_cell",
    "compute_goldens",
    "default_goldens_path",
    "diff_goldens",
    "load_goldens",
    "render_goldens",
    "stream_digest",
]

GOLDEN_SCHEMA_VERSION = 1

#: Initial CPU current the pinned cells assume before cycle 0 (matches the
#: steady-state start used across the test suite).
_INITIAL_CURRENT_AMPS = 35.0
#: Trace length headroom: cells never commit more instructions than this.
_N_INSTRUCTIONS = 60_000


@dataclass(frozen=True)
class GoldenCell:
    """One pinned workload x configuration conformance cell."""

    benchmark: str
    technique: str  # "base" (NullController) or "tuned" (resonance tuning)
    n_cycles: int = 1500
    warmup_cycles: int = 200

    def __post_init__(self) -> None:
        if self.technique not in ("base", "tuned"):
            raise ConfigurationError(
                f"unknown golden technique {self.technique!r}"
            )
        if self.benchmark not in SPEC2K:
            raise ConfigurationError(
                f"unknown golden benchmark {self.benchmark!r}"
            )

    @property
    def key(self) -> str:
        return f"{self.benchmark}/{self.technique}"


#: The pinned cell set: the paper's two worst violators (lucas, swim), one
#: representative non-violator (gzip), each base and tuned.  Chosen to
#: exercise both hot paths hard (resonant episodes drive the detector and
#: deep supply ringing) while staying cheap enough for every pytest run.
GOLDEN_CELLS = tuple(
    GoldenCell(benchmark, technique)
    for benchmark in ("gzip", "lucas", "swim")
    for technique in ("base", "tuned")
)


def stream_digest(values: Iterable, kind: str = "float") -> str:
    """Canonical SHA-256 of a per-cycle stream.

    ``kind="float"`` hex-encodes each sample exactly (two streams hash
    equal iff they are bit-identical); ``kind="str"`` hashes pre-rendered
    lines such as event records.
    """
    import hashlib

    if kind == "float":
        lines = [float(v).hex() for v in values]
    elif kind == "str":
        lines = [str(v) for v in values]
    else:
        raise ConfigurationError(f"unknown stream kind {kind!r}")
    payload = "\n".join(lines).encode("ascii")
    return hashlib.sha256(payload).hexdigest()


def _event_stream(currents: Sequence[float]) -> List[str]:
    """Replay the Table 1 detector over a recorded current stream.

    Uses a fresh whole-amp sensor and band detector so the event golden
    covers the detector hot path even for base (uncontrolled) cells.
    Goes through the vectorized detector kernel when enabled (the kernel
    is bit-identical to the scalar ``observe`` loop, so the golden hashes
    are invariant either way -- and the goldens thereby gate the kernel).
    """
    from repro.core import kernel as core_kernel

    band = RLCAnalysis(TABLE1_SUPPLY).band
    sensor = CurrentSensor()
    detector = ResonanceDetector(
        half_periods=band.half_periods,
        threshold_amps=TABLE1_TUNING.resonant_current_threshold_amps,
        max_repetition_tolerance=TABLE1_TUNING.max_repetition_tolerance,
    )
    sensed = [sensor.read(amps) for amps in currents]
    if core_kernel.kernel_enabled():
        found = core_kernel.run_detector(detector, sensed)
    else:
        found = [
            event
            for cycle, amps in enumerate(sensed)
            for event in [detector.observe(cycle, amps)]
            if event is not None
        ]
    return [
        f"{event.cycle}:{int(event.polarity)}:{event.count}" for event in found
    ]


def _golden_trace_key(cell: GoldenCell):
    """The record/replay front-end key of one pinned cell."""
    from dataclasses import asdict

    from repro.trace import TraceKey

    profile = SPEC2K[cell.benchmark]
    return TraceKey(
        benchmark=cell.benchmark,
        workload=asdict(profile),
        seed=profile.seed,
        n_instructions=_N_INSTRUCTIONS,
        processor=asdict(TABLE1_PROCESSOR),
        n_cycles=cell.n_cycles,
        warmup_cycles=cell.warmup_cycles,
        schedule="null",
        overlay="none",
    )


def _verified_replay_digest(cell: GoldenCell, capture, result) -> str:
    """Content address of the recorded trace, gated by a replay self-check.

    The captured front-end trace is replayed in memory (a
    :class:`~repro.trace.replay.ReplaySimulation` against a fresh supply)
    and the replayed :class:`SimulationResult` -- recorded current and
    voltage streams included -- must equal the full run's bit-for-bit
    before the digest may enter the goldens.  A divergence raises, so
    ``tools/conformance.py`` fails loudly instead of committing a
    fingerprint the replay path cannot reproduce.
    """
    from repro.trace import TracePayload
    from repro.trace.replay import ReplaySimulation

    if not capture.completed:
        raise SimulationError(
            f"golden cell {cell.key} did not produce a replayable capture"
        )
    payload = TracePayload(
        content_sha256=stream_digest(capture.currents),
        config_digest=capture.key.digest(),
        n_cycles=cell.n_cycles,
        warmup_cycles=cell.warmup_cycles,
        instructions_warmup=capture.instructions_warmup,
        instructions_total=capture.instructions_total,
        currents=list(capture.currents),
    )
    supply = PowerSupply(TABLE1_SUPPLY, initial_current=_INITIAL_CURRENT_AMPS)
    replayed = ReplaySimulation(
        payload, supply, None, record=True, benchmark=cell.benchmark
    ).run(cell.n_cycles)
    if replayed != result:
        raise SimulationError(
            f"replayed golden cell {cell.key} diverged from the full"
            f" simulation"
        )
    return payload.content_sha256


def compute_cell(cell: GoldenCell) -> dict:
    """Run one pinned cell and return its canonical fingerprint record."""
    controller = None
    if cell.technique == "tuned":
        controller = ResonanceTuningController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR, TABLE1_TUNING
        )
    processor = Processor.from_profile(
        SPEC2K[cell.benchmark],
        n_instructions=_N_INSTRUCTIONS,
        config=TABLE1_PROCESSOR,
        supply_config=TABLE1_SUPPLY,
    )
    supply = PowerSupply(TABLE1_SUPPLY, initial_current=_INITIAL_CURRENT_AMPS)
    simulation = Simulation(
        processor,
        supply,
        controller,
        record=True,
        benchmark=cell.benchmark,
        warmup_cycles=cell.warmup_cycles,
    )
    capture = None
    if cell.technique == "base":
        # Base cells have the replayable null schedule: fingerprint the
        # recorded (warmup + measured) front-end trace too, and prove the
        # replay path reproduces the run before committing the digest.
        from repro.trace import TraceCapture

        capture = TraceCapture(_golden_trace_key(cell))
        simulation.capture = capture
    result = simulation.run(cell.n_cycles)
    events = _event_stream(simulation.currents)
    currents = simulation.currents
    voltages = simulation.voltages
    replay_sha = (
        None if capture is None
        else _verified_replay_digest(cell, capture, result)
    )
    return {
        "n_cycles": cell.n_cycles,
        "warmup_cycles": cell.warmup_cycles,
        "currents_sha256": stream_digest(currents),
        "voltages_sha256": stream_digest(voltages),
        "events_sha256": stream_digest(events, kind="str"),
        # Content address of the full recorded trace in a repro.trace
        # store (None for unreplayable schedules); verified by an
        # in-memory replay round trip before it lands here.
        "replay_trace_sha256": replay_sha,
        # Human-readable context so a failing diff says what moved.
        "n_events": len(events),
        "violation_cycles": result.violation_cycles,
        "violation_events": result.violation_events,
        "instructions": result.instructions,
        "mean_current_amps": float.hex(sum(currents) / len(currents)),
        "peak_abs_voltage_volts": float.hex(max(abs(v) for v in voltages)),
    }


def _compute_cell_by_key(key: str) -> "tuple[str, dict]":
    """Module-level worker entry point (must stay picklable)."""
    for cell in GOLDEN_CELLS:
        if cell.key == key:
            return key, compute_cell(cell)
    raise ConfigurationError(f"unknown golden cell {key!r}")


def compute_goldens(workers: int = 1) -> Dict[str, dict]:
    """Fingerprint every pinned cell; ``workers > 1`` fans out a process pool.

    The result is assembled in the canonical cell order regardless of the
    backend or completion order, so serialization is byte-identical across
    sequential and parallel runs.
    """
    keys = [cell.key for cell in GOLDEN_CELLS]
    if workers <= 1:
        computed = dict(_compute_cell_by_key(key) for key in keys)
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(keys))) as pool:
            computed = dict(pool.map(_compute_cell_by_key, keys))
    return {key: computed[key] for key in keys}


# ----------------------------------------------------------------------
# Persistence and diffing
# ----------------------------------------------------------------------
def default_goldens_path() -> pathlib.Path:
    """``tests/goldens/goldens.json`` relative to the repository root."""
    return (
        pathlib.Path(__file__).resolve().parents[3]
        / "tests" / "goldens" / "goldens.json"
    )


def render_goldens(cells: Dict[str, dict], reason: str) -> str:
    """Serialize a golden payload canonically (sorted keys, one trailing \\n)."""
    payload = {
        "version": GOLDEN_SCHEMA_VERSION,
        "regen_reason": reason,
        "cells": cells,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def load_goldens(path: Optional[pathlib.Path] = None) -> dict:
    path = path or default_goldens_path()
    with open(path, "r", encoding="ascii") as handle:
        payload = json.load(handle)
    if payload.get("version") != GOLDEN_SCHEMA_VERSION:
        raise ConfigurationError(
            f"golden schema version {payload.get('version')!r} unsupported "
            f"(expected {GOLDEN_SCHEMA_VERSION}); regenerate with "
            "tools/conformance.py --regen"
        )
    return payload


def diff_goldens(old: Dict[str, dict], new: Dict[str, dict]) -> List[str]:
    """Human-readable description of every difference between two cell maps."""
    lines: List[str] = []
    for key in sorted(set(old) | set(new)):
        if key not in old:
            lines.append(f"{key}: new cell")
            continue
        if key not in new:
            lines.append(f"{key}: cell removed")
            continue
        for field in sorted(set(old[key]) | set(new[key])):
            before = old[key].get(field)
            after = new[key].get(field)
            if before != after:
                lines.append(f"{key}: {field} {before!r} -> {after!r}")
    return lines
