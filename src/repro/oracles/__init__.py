"""Differential oracles and golden-trace conformance for the hot paths.

The repro's claims rest on two optimized implementations: the O(1)
cumulative-sum resonance detector (:mod:`repro.core.history` /
:mod:`repro.core.detector`) and the Heun-integrated RLC supply
(:mod:`repro.power.integrator` / :mod:`repro.power.supply`).  This package
holds independent re-implementations used only to cross-check them:

* :class:`~repro.oracles.detector_ref.ReferenceDetector` -- brute-force
  detection that literally re-sums every ``M T/8`` window from the raw
  trace each cycle (no cumulative-sum register, no shared adders, no bit
  shift registers) and must agree bit-for-bit with
  :class:`~repro.core.detector.ResonanceDetector` on exactly representable
  traces.
* :class:`~repro.oracles.supply_ref.ConvolutionSupply` -- a direct
  state-transition-matrix / convolution solution of the same discrete
  system the Heun integrator steps, agreeing within a documented floating
  tolerance, itself cross-checked against the closed forms in
  :mod:`repro.power.analytic`.
* :mod:`~repro.oracles.golden` -- canonical fingerprinting of per-cycle
  current/voltage/event streams for a pinned set of workload x config
  cells, consumed by ``tools/conformance.py`` and the CI gate.

None of this code is imported by the production simulation path; it exists
so every future optimization PR inherits a conformance net.  See
``docs/testing.md``.
"""

from repro.oracles.detector_ref import ReferenceDetector
from repro.oracles.supply_ref import ConvolutionSupply, violation_stats
from repro.oracles.golden import (
    GOLDEN_CELLS,
    GOLDEN_SCHEMA_VERSION,
    GoldenCell,
    compute_cell,
    compute_goldens,
    default_goldens_path,
    diff_goldens,
    load_goldens,
    render_goldens,
    stream_digest,
)

__all__ = [
    "ReferenceDetector",
    "ConvolutionSupply",
    "violation_stats",
    "GOLDEN_CELLS",
    "GOLDEN_SCHEMA_VERSION",
    "GoldenCell",
    "compute_cell",
    "compute_goldens",
    "default_goldens_path",
    "diff_goldens",
    "load_goldens",
    "render_goldens",
    "stream_digest",
]
