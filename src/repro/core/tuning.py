"""The resonance-tuning controller: two-tier prevention (Section 3.2).

First-level response (gentle): when a new resonant event arrives with a
resonant event count at or above the *initial response threshold*, reduce
the issue width (8 to 4) and the cache ports (2 to 1) for the *initial
response time*.  Lowering the rate instructions move through the pipeline
lowers the frequency of current variations, steering them out of the
resonance band.

Second-level response (brute force): when the count reaches one below the
*maximum repetition tolerance*, stall the frontend and issue while holding
the current at a medium level with phantom operations.  Both halves matter:
without the stall the variation frequency might not change, and without the
phantom current the stall edge itself would be a large variation.  The
response stays engaged for at least the second-level response time *and*
until the resonant event count has decreased (Section 3.2's guarantee).

An optional sensing/actuation delay shifts both responses later; Section 5.2
shows delays up to a quarter resonant period cost little.

A *watchdog* bounds each second-level engagement: the normal release needs
the resonant event count to decrease, which a faulted sensor (stuck-at, or
one entrained by an external resonant attacker the stall cannot quiet) may
never report.  After ``second_level_watchdog_cycles`` of continuous hold the
response is force-released and re-engagement locked out for one response
time, degrading a would-be permanent stall into a bounded duty cycle.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import PowerSupplyConfig, ProcessorConfig, TuningConfig
from repro.core.controller import NoiseController
from repro.core.detector import ResonanceDetector
from repro.core.sensor import CurrentSensor
from repro.power.rlc import RLCAnalysis
from repro.uarch.pipeline import ControlDirectives, NO_CONTROL

__all__ = ["ResonanceTuningController"]

_FIRST = 1
_SECOND = 2


class ResonanceTuningController(NoiseController):
    """Detect nascent resonance and tune its frequency away from the band."""

    name = "resonance-tuning"

    def __init__(
        self,
        supply_config: PowerSupplyConfig,
        processor_config: ProcessorConfig,
        tuning_config: Optional[TuningConfig] = None,
        sensor: Optional[CurrentSensor] = None,
        detector: Optional[ResonanceDetector] = None,
        enable_first_level: bool = True,
        enable_second_level: bool = True,
    ):
        self.supply_config = supply_config
        self.processor_config = processor_config
        self.tuning = tuning_config or TuningConfig()
        #: ablation switches: the paper's design uses both tiers; disabling
        #: one shows why (first-only loses the guarantee, second-only pays
        #: the harsh response for every nascent resonance)
        self.enable_first_level = enable_first_level
        self.enable_second_level = enable_second_level
        self.sensor = sensor or CurrentSensor()
        if detector is None:
            band = RLCAnalysis(supply_config).band
            detector = ResonanceDetector(
                half_periods=band.half_periods,
                threshold_amps=self.tuning.resonant_current_threshold_amps,
                max_repetition_tolerance=self.tuning.max_repetition_tolerance,
            )
        self.detector = detector

        self._first_directives = ControlDirectives(
            issue_width_limit=self.tuning.reduced_issue_width,
            cache_ports_limit=self.tuning.reduced_cache_ports,
        )
        self._second_directives = ControlDirectives(
            stall_issue=True,
            stall_fetch=True,
            current_floor_amps=processor_config.medium_current_amps,
        )

        self._pending: List[Tuple[int, int]] = []  # (activation cycle, level)
        self._first_until = -1
        self._second_active = False
        self._second_min_until = -1
        self._second_engaged_at = -1
        self._second_entry_count = 0
        self._watchdog_lockout_until = -1

        self.watchdog_hold_cycles = (
            self.tuning.second_level_watchdog_cycles
            if self.tuning.second_level_watchdog_cycles is not None
            else 8 * self.tuning.second_level_response_time
        )
        self.first_level_cycles = 0
        self.second_level_cycles = 0
        self.first_level_engagements = 0
        self.second_level_engagements = 0
        self.watchdog_releases = 0
        self.max_second_level_hold_cycles = 0

        from repro.core.overheads import estimate_overheads

        #: Section 3.3 hardware inventory; its per-cycle energy is charged
        #: on top of the processor energy by the simulation (Section 4.1)
        self.overheads = estimate_overheads(
            self.detector,
            processor_config,
            vdd_volts=supply_config.vdd_volts,
            clock_hz=supply_config.clock_hz,
        )

    # ------------------------------------------------------------------
    def observe(
        self, cycle: int, current_amps: float, voltage_volts: float, stats=None
    ) -> None:
        """Sense the cycle's current and react to any new resonant event."""
        sensed = self.sensor.read(current_amps)
        event = self.detector.observe(cycle, sensed)
        if event is None or self._second_active:
            return
        activation = cycle + 1 + self.tuning.response_delay_cycles
        if (
            self.enable_second_level
            and event.count >= self.tuning.second_level_threshold
        ):
            self._pending.append((activation, _SECOND))
        elif (
            self.enable_first_level
            and event.count >= self.tuning.initial_response_threshold
        ):
            self._pending.append((activation, _FIRST))

    # ------------------------------------------------------------------
    def directives(self, cycle: int) -> ControlDirectives:
        self._activate_pending(cycle)
        if self._second_active:
            held = cycle - self._second_engaged_at
            # Release once the minimum response time has elapsed and the
            # resonant event count has effectively decreased: either the
            # chain count dropped, or the stall has kept detection quiet for
            # the whole response time (Section 5.2 sizes that time so the
            # dissipated energy is worth one event).
            quiet = (
                self.detector.last_event is None
                or self.detector.last_event.cycle < self._second_engaged_at
            )
            count_dropped = (
                self.detector.current_count(cycle) < self._second_entry_count
            )
            if held >= self.watchdog_hold_cycles:
                # Watchdog: the release condition has not come true within
                # the bounded hold -- a faulted sensor can keep reporting
                # events forever.  Force the release and lock out
                # re-engagement for one response time so the pipeline makes
                # progress before the (likely still-faulty) detection can
                # stall it again.
                self._release_second_level(held)
                self.watchdog_releases += 1
                self._watchdog_lockout_until = (
                    cycle + self.tuning.second_level_response_time
                )
            elif cycle >= self._second_min_until and (quiet or count_dropped):
                self._release_second_level(held)
            else:
                self.second_level_cycles += 1
                return self._second_directives
        if cycle < self._first_until:
            self.first_level_cycles += 1
            return self._first_directives
        return NO_CONTROL

    def _release_second_level(self, held_cycles: int) -> None:
        self._second_active = False
        self.max_second_level_hold_cycles = max(
            self.max_second_level_hold_cycles, held_cycles
        )

    def _activate_pending(self, cycle: int) -> None:
        if not self._pending:
            return
        remaining = []
        for activation, level in self._pending:
            if activation > cycle:
                remaining.append((activation, level))
                continue
            if level == _SECOND and cycle < self._watchdog_lockout_until:
                continue
            if level == _SECOND and not self._second_active:
                self._second_active = True
                self._second_engaged_at = cycle
                self._second_min_until = (
                    cycle + self.tuning.second_level_response_time
                )
                self._second_entry_count = max(
                    1, self.detector.current_count(cycle)
                )
                self.second_level_engagements += 1
            elif level == _FIRST:
                new_until = cycle + self.tuning.initial_response_time
                if new_until > self._first_until:
                    if cycle >= self._first_until:
                        self.first_level_engagements += 1
                    self._first_until = new_until
        self._pending = remaining

    # ------------------------------------------------------------------
    @property
    def response_cycle_fractions(self) -> dict:
        return {
            "first_level_cycles": self.first_level_cycles,
            "second_level_cycles": self.second_level_cycles,
        }

    def overhead_energy_joules(self, n_cycles: int) -> float:
        return n_cycles * self.overheads.energy_per_cycle_joules
