"""Vectorized cycle-kernel hot path (ROADMAP item 1).

The scalar simulation advances one cycle at a time through
``PowerSupply.step`` and ``ResonanceDetector.observe``.  This module
advances *whole traces* per call:

* :func:`run_supply` -- the Heun recurrence of ``power/integrator.py``
  with every per-cycle attribute lookup hoisted out of the loop, plus a
  vectorized post-pass for the violation bookkeeping.  The recurrence is
  serial in time (each cycle's state feeds the next), so it cannot be
  time-vectorized without changing float rounding; the win here is pure
  interpreter overhead removal, and the result is **bit-identical** to
  ``PowerSupply.step`` cycle by cycle.
* :func:`run_supply_batch` -- the same recurrence advanced for several
  independent traces (sweep lanes) at once with NumPy elementwise ops.
  IEEE-754 elementwise arithmetic matches scalar arithmetic exactly, so
  every lane is bit-identical to its own scalar run.
* :func:`run_detector` -- the quarter-period window comparisons of
  ``core/detector.py`` as ``np.cumsum``-based whole-trace differences,
  with event extraction and chain tracing only on the sparse event
  cycles.  ``np.cumsum`` accumulates sequentially, so the window sums
  carry exactly the same rounding as the scalar
  ``CurrentHistoryRegister`` on exactly representable traces (the same
  equivalence contract as ``repro.oracles.ReferenceDetector``; the
  conformance goldens and the Hypothesis differential fuzz in
  ``tests/test_kernel.py`` hold it to bit-for-bit agreement there).

``REPRO_KERNEL=0`` in the environment disables every kernel fast path
(the scalar loops run instead); this is the escape hatch the
equivalence hooks in ``tools/verify_all.py`` and the differential tests
use to compare both paths end to end.
"""

from __future__ import annotations

import math
import os
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import FaultError, SimulationError
from repro.core.detector import (
    COUNTER_CAP,
    Polarity,
    ResonanceDetector,
    ResonantEvent,
)

__all__ = [
    "KERNEL_ENV",
    "kernel_enabled",
    "run_detector",
    "run_supply",
    "run_supply_batch",
]

#: Environment variable gating the kernel fast paths ("0"/"false" disables).
KERNEL_ENV = "REPRO_KERNEL"


def kernel_enabled() -> bool:
    """True unless ``REPRO_KERNEL`` disables the vectorized hot path."""
    return os.environ.get(KERNEL_ENV, "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


# ----------------------------------------------------------------------
# Detector kernel
# ----------------------------------------------------------------------
def run_detector(
    detector: ResonanceDetector, samples: Sequence[float]
) -> List[ResonantEvent]:
    """Advance a *fresh* detector over a whole sensed-current trace.

    Returns the events the scalar ``observe`` loop would have returned,
    in cycle order, and leaves the detector's public counters
    (``comparisons``, ``total_events``, ``events_by_polarity``,
    ``nonfinite_samples``, ``last_event``) exactly as that loop would.
    The internal shift registers are *not* replayed -- a subsequent
    ``observe`` call on the consumed detector raises ``SimulationError``
    rather than silently diverging.

    Bit-equivalence contract: identical to the scalar path whenever the
    trace is exactly representable (every sample and every windowed sum
    exact in float64 -- e.g. the dyadic sensor grid), the same contract
    ``repro.oracles.ReferenceDetector`` documents.
    """
    if detector._cycle != -1:
        raise SimulationError(
            "run_detector requires a freshly constructed detector "
            f"(already observed through cycle {detector._cycle})"
        )
    x = np.asarray(samples, dtype=float)
    n_cycles = x.shape[0]
    if n_cycles == 0:
        return []

    # Non-finite samples hold the last finite reading (0.0 before any),
    # mirroring ``observe``'s ``_last_finite_amps`` semantics.
    finite = np.isfinite(x)
    nonfinite = int(n_cycles - np.count_nonzero(finite))
    if nonfinite:
        last_idx = np.where(finite, np.arange(n_cycles), -1)
        np.maximum.accumulate(last_idx, out=last_idx)
        held = np.where(last_idx >= 0, x[np.maximum(last_idx, 0)], 0.0)
    else:
        held = x

    # Prefix sums with a leading zero: S[t + 1] is the cumulative sensed
    # current through cycle t, accumulated sequentially exactly like the
    # scalar CurrentHistoryRegister.
    prefix = np.empty(n_cycles + 1, dtype=float)
    prefix[0] = 0.0
    np.cumsum(held, out=prefix[1:])

    # Best qualifying quarter per cycle, scanned in ascending quarter
    # order with a strictly-greater test so ties resolve to the smallest
    # quarter -- the scalar loop's behavior.
    best_norm = np.zeros(n_cycles, dtype=float)
    best_code = np.zeros(n_cycles, dtype=np.int8)  # 0 none, 1 HL, 2 LH
    comparisons = 0
    threshold_amps = detector.threshold_amps
    for quarter in detector._quarters:
        first = 2 * quarter - 1  # first cycle with 2q samples of history
        if first >= n_cycles:
            continue
        comparisons += n_cycles - first
        diff = (
            prefix[2 * quarter:]
            - 2.0 * prefix[quarter:n_cycles + 1 - quarter]
            + prefix[:n_cycles + 1 - 2 * quarter]
        )
        threshold = 0.5 * threshold_amps * quarter
        magnitude = np.abs(diff)
        norm = magnitude / quarter
        better = (magnitude >= threshold) & (norm > best_norm[first:])
        best_norm[first:][better] = norm[better]
        best_code[first:][better] = np.where(diff[better] > 0, 2, 1)

    event_cycles = np.nonzero(best_code)[0]
    codes = best_code[event_cycles]

    # Per-polarity sorted event-cycle arrays (for vectorized searchsorted
    # window probes) and run-start arrays (consecutive event cycles are
    # one physical variation, Section 3.1.3).
    cycle_index = np.arange(n_cycles)
    by_code = {}
    for code in (1, 2):
        bits = best_code == code
        prev = np.empty_like(bits)
        prev[0] = False
        prev[1:] = bits[:-1]
        run_start = np.where(bits & ~prev, cycle_index, 0)
        np.maximum.accumulate(run_start, out=run_start)
        by_code[code] = (event_cycles[codes == code], run_start)

    events: List[Optional[ResonantEvent]] = [None] * event_cycles.shape[0]
    for code in (1, 2):
        chains = _trace_chains(detector, by_code, code)
        polarity = Polarity.HIGH_LOW if code == 1 else Polarity.LOW_HIGH
        positions = np.nonzero(codes == code)[0].tolist()
        for position, chain in zip(positions, chains):
            events[position] = ResonantEvent(
                cycle=chain[0], polarity=polarity, count=len(chain),
                chain_cycles=tuple(chain),
            )

    # Leave the detector's observable counters exactly as the scalar
    # loop would; mark it consumed (``_cycle`` advanced) so a stray
    # ``observe`` afterwards fails loudly in the shift registers.
    detector.comparisons = min(detector.comparisons + comparisons, COUNTER_CAP)
    detector.nonfinite_samples = min(
        detector.nonfinite_samples + nonfinite, COUNTER_CAP
    )
    finite_indices = np.nonzero(finite)[0]
    if finite_indices.shape[0]:
        detector._last_finite_amps = float(x[finite_indices[-1]])
    detector.total_events = min(detector.total_events + len(events), COUNTER_CAP)
    for event in events:
        detector.events_by_polarity[event.polarity] = min(
            detector.events_by_polarity[event.polarity] + 1, COUNTER_CAP
        )
    if events:
        detector.last_event = events[-1]
    detector._cycle = n_cycles - 1
    return events


def _trace_chains(detector, by_code, code) -> List[List[int]]:
    """Chains for every event of one polarity code, traced in lockstep.

    Mirrors the scalar ``ResonanceDetector._trace_chain`` exactly, but
    advances all events one *link* at a time: link ``k`` of every still-
    active chain probes the same opposite-polarity event array (polarity
    alternates deterministically along a chain), so each link is one
    vectorized ``searchsorted`` instead of a per-event bisect loop.
    Links only ever stop (the active set shrinks monotonically), so each
    chain's links are a prefix of the link table.
    """
    cycles, _ = by_code[code]
    n_events = cycles.shape[0]
    if n_events == 0:
        return []
    h_min, h_max = detector._h_min, detector._h_max
    slack = detector._chain_slack
    tolerance = detector.max_repetition_tolerance
    # Events only see registers aged against their own cycle: every
    # window is clamped to the register retention horizon.
    horizon = cycles - (detector.register_length - 1)
    reference = cycles
    active = np.ones(n_events, dtype=bool)
    expected = 3 - code
    links = []
    for _ in range(tolerance):
        target, run_start = by_code[expected]
        if target.shape[0] == 0:
            break
        lo = np.maximum(np.maximum(reference - h_max, horizon), 0)
        hi = reference - h_min + slack
        probe = np.searchsorted(target, hi, side="right") - 1
        found = target[np.maximum(probe, 0)]
        ok = active & (probe >= 0) & (found >= lo)
        if not ok.any():
            break
        links.append((ok, found))
        reference = np.where(
            ok,
            np.maximum(np.maximum(run_start[found], horizon), 0),
            reference,
        )
        active = ok
        expected = 3 - expected

    table = np.full((n_events, len(links) + 1), -1, dtype=np.int64)
    table[:, 0] = cycles
    for k, (ok, found) in enumerate(links):
        table[ok, k + 1] = found[ok]
    chains = []
    append = chains.append
    for row in table.tolist():
        try:
            append(row[:row.index(-1)])
        except ValueError:
            append(row)
    return chains


# ----------------------------------------------------------------------
# Supply kernel
# ----------------------------------------------------------------------
def run_supply(supply, currents) -> np.ndarray:
    """Advance a ``PowerSupply`` over a whole current trace, bit-exactly.

    Equivalent to ``[supply.step(c) for c in currents]`` -- same voltages
    to the last bit, same violation bookkeeping, same trace recording,
    same ``FaultError``/``SimulationError`` at the same cycle with the
    supply state advanced exactly as far as the scalar loop would have
    advanced it -- but with the integrator locals hoisted out of the
    per-cycle loop and the violation statistics computed vectorized.
    Returns the voltage waveform.
    """
    arr = np.asarray(currents, dtype=float)
    currents = arr.tolist()
    n_cycles = len(currents)
    integrator = supply._integrator
    state = integrator.state
    v = state.voltage
    i_l = state.inductor_current
    dt, inv_c, inv_l, r, substeps = integrator.coefficients()
    half_dt = 0.5 * dt

    # Common case: all inputs finite and the integration stays finite.
    # Run the recurrence with no per-cycle checks, then verify the whole
    # voltage waveform at once; on the rare non-finite input or
    # divergence, discard and replay with the per-cycle checked loop
    # from the untouched starting state so the error lands at the exact
    # scalar cycle.  (Identical arithmetic either way: float ops are
    # deterministic, and garbage computed past a divergence is thrown
    # away.)
    if n_cycles and bool(np.isfinite(arr).all()):
        volts: List[float] = []
        append = volts.append
        if substeps == 1:
            for u in currents:
                dv1 = (i_l - u) * inv_c
                di1 = (-v - r * i_l) * inv_l
                v_pred = v + dt * dv1
                i_pred = i_l + dt * di1
                dv2 = (i_pred - u) * inv_c
                di2 = (-v_pred - r * i_pred) * inv_l
                v = v + half_dt * (dv1 + dv2)
                i_l = i_l + half_dt * (di1 + di2)
                append(v + r * u)
        else:
            for u in currents:
                for _ in range(substeps):
                    dv1 = (i_l - u) * inv_c
                    di1 = (-v - r * i_l) * inv_l
                    v_pred = v + dt * dv1
                    i_pred = i_l + dt * di1
                    dv2 = (i_pred - u) * inv_c
                    di2 = (-v_pred - r * i_pred) * inv_l
                    v = v + half_dt * (dv1 + dv2)
                    i_l = i_l + half_dt * (di1 + di2)
                append(v + r * u)
        volts_arr = np.asarray(volts)
        if bool(np.isfinite(volts_arr).all()):
            _writeback_supply(supply, currents, volts, v, i_l, None)
            return volts_arr
        v = state.voltage
        i_l = state.inductor_current

    start = supply.cycle
    isfinite = math.isfinite
    volts = []
    append = volts.append
    error: Optional[Exception] = None
    for u in currents:
        if not isfinite(u):
            error = FaultError(
                f"non-finite CPU current {u!r} at cycle "
                f"{start + len(volts)}"
            )
            break
        for _ in range(substeps):
            dv1 = (i_l - u) * inv_c
            di1 = (-v - r * i_l) * inv_l
            v_pred = v + dt * dv1
            i_pred = i_l + dt * di1
            dv2 = (i_pred - u) * inv_c
            di2 = (-v_pred - r * i_pred) * inv_l
            v = v + half_dt * (dv1 + dv2)
            i_l = i_l + half_dt * (di1 + di2)
        voltage = v + r * u
        if not isfinite(voltage):
            error = SimulationError(
                f"power-supply voltage diverged ({voltage!r}) at cycle"
                f" {start + len(volts)}; integrator state is no longer"
                " trustworthy"
            )
            break
        append(voltage)

    _writeback_supply(supply, currents, volts, v, i_l, error)
    if error is not None:
        raise error
    return np.asarray(volts)


def _writeback_supply(supply, currents, volts, v, i_l, error) -> None:
    """Apply a kernel advance's effects back onto the supply object.

    ``volts`` holds the completed cycles only; on an error the state is
    written back exactly as the scalar loop leaves it at the failing
    cycle (``FaultError`` precedes the integrator update for that cycle,
    a divergence ``SimulationError`` follows it -- the caller passes the
    matching ``v``/``i_l``).
    """
    n_done = len(volts)
    state = supply._integrator.state
    state.voltage = v
    state.inductor_current = i_l
    if n_done:
        volts_arr = np.asarray(volts)
        violated = np.abs(volts_arr) > supply._margin
        previous = np.empty_like(violated)
        previous[0] = supply._in_violation
        previous[1:] = violated[:-1]
        supply.violation_cycles += int(np.count_nonzero(violated))
        supply.violation_events += int(np.count_nonzero(violated & ~previous))
        if supply.first_violation_cycle is None and violated.any():
            supply.first_violation_cycle = supply.cycle + int(
                np.argmax(violated)
            )
        supply._in_violation = bool(violated[-1])
        supply.last_voltage = volts[-1]
        if supply._record:
            trace = supply.trace
            trace.currents.extend(currents[:n_done])
            trace.voltages.extend(volts)
            trace.violations.extend(bool(flag) for flag in violated)
    supply.cycle += n_done


def run_supply_batch(
    supplies: Sequence, currents: Sequence
) -> List[Union[np.ndarray, Exception]]:
    """Advance several independent supplies over equal-length traces.

    Lanes are stacked ``(cycles, lanes)`` and advanced with elementwise
    NumPy ops -- IEEE-identical per lane to that lane's scalar run.  A
    lane whose inputs are non-finite, whose integration diverges, or
    whose ``substeps`` differs from the group is replayed through
    :func:`run_supply` on its own (reproducing the scalar error at the
    exact cycle); its entry in the returned list is the raised exception
    instead of the voltage array.
    """
    n_lanes = len(supplies)
    if n_lanes != len(currents):
        raise SimulationError("one current trace per supply lane required")
    if n_lanes == 0:
        return []
    traces = [np.ascontiguousarray(c, dtype=float) for c in currents]
    n_cycles = traces[0].shape[0]
    if any(t.shape != (n_cycles,) for t in traces):
        raise SimulationError("batched supply lanes must share a trace length")

    results: List[Union[np.ndarray, Exception, None]] = [None] * n_lanes

    def scalar_lane(lane: int) -> None:
        try:
            results[lane] = run_supply(supplies[lane], traces[lane])
        except (FaultError, SimulationError) as exc:
            results[lane] = exc

    # Group batchable lanes by substep count; degrade odd lanes to the
    # scalar kernel (still far faster than per-cycle ``step`` calls).
    groups: dict = {}
    for lane, (supply, trace) in enumerate(zip(supplies, traces)):
        if not np.isfinite(trace).all():
            scalar_lane(lane)
            continue
        groups.setdefault(supply._integrator.substeps, []).append(lane)

    for substeps, lanes in groups.items():
        if len(lanes) == 1 or n_cycles == 0:
            for lane in lanes:
                scalar_lane(lane)
            continue
        stacked = np.column_stack([traces[lane] for lane in lanes])
        integrators = [supplies[lane]._integrator for lane in lanes]
        coeffs = [i.coefficients() for i in integrators]
        v = np.array([i.state.voltage for i in integrators])
        i_l = np.array([i.state.inductor_current for i in integrators])
        dt = np.array([c[0] for c in coeffs])
        inv_c = np.array([c[1] for c in coeffs])
        inv_l = np.array([c[2] for c in coeffs])
        r = np.array([c[3] for c in coeffs])
        half_dt = 0.5 * dt
        volts = np.empty((n_cycles, len(lanes)), dtype=float)
        with np.errstate(all="ignore"):
            for t in range(n_cycles):
                u = stacked[t]
                for _ in range(substeps):
                    dv1 = (i_l - u) * inv_c
                    di1 = (-v - r * i_l) * inv_l
                    v_pred = v + dt * dv1
                    i_pred = i_l + dt * di1
                    dv2 = (i_pred - u) * inv_c
                    di2 = (-v_pred - r * i_pred) * inv_l
                    v = v + half_dt * (dv1 + dv2)
                    i_l = i_l + half_dt * (di1 + di2)
                volts[t] = v + r * u
        finite_lane = np.isfinite(volts).all(axis=0)
        for column, lane in enumerate(lanes):
            if not finite_lane[column]:
                # Replay scalar from the untouched supply state so the
                # divergence error lands at the exact scalar cycle.
                scalar_lane(lane)
                continue
            lane_volts = volts[:, column].tolist()
            _writeback_supply(
                supplies[lane], traces[lane].tolist(), lane_volts,
                float(v[column]), float(i_l[column]), None,
            )
            results[lane] = volts[:, column].copy()

    return results  # type: ignore[return-value]
