"""The paper's contribution: current sensing, resonant-event detection and
the two-tier resonance-tuning controller.

Public surface:

* :class:`~repro.core.sensor.CurrentSensor` -- whole-amp on-die sensing.
* :class:`~repro.core.detector.ResonanceDetector` -- band-wide detection of
  nascent resonance via quarter-period current sums and event histories.
* :class:`~repro.core.tuning.ResonanceTuningController` -- the two-tier
  response that tunes current variations out of the resonance band.
* :class:`~repro.core.controller.NoiseController` -- the interface all
  techniques (including the baselines) implement.
"""

from repro.core.controller import NoiseController, NullController
from repro.core.detector import Polarity, ResonanceDetector, ResonantEvent
from repro.core.history import CurrentHistoryRegister, EventHistoryRegister
from repro.core.kernel import (
    kernel_enabled,
    run_detector,
    run_supply,
    run_supply_batch,
)
from repro.core.overheads import DetectorOverheads, estimate_overheads
from repro.core.sensor import CurrentSensor
from repro.core.tuning import ResonanceTuningController
from repro.core.wavelet import WaveletDetector, dyadic_scales_for_band

__all__ = [
    "NoiseController",
    "NullController",
    "kernel_enabled",
    "run_detector",
    "run_supply",
    "run_supply_batch",
    "Polarity",
    "ResonanceDetector",
    "ResonantEvent",
    "CurrentHistoryRegister",
    "EventHistoryRegister",
    "CurrentSensor",
    "DetectorOverheads",
    "estimate_overheads",
    "ResonanceTuningController",
    "WaveletDetector",
    "dyadic_scales_for_band",
]
