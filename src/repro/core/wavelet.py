"""Wavelet-based resonance detection (the alternative of ref [11]).

Joseph, Hu & Martonosi (HPCA'04, the paper's reference [11]) characterize
di/dt with wavelets and propose a simplified wavelet-based convolution as an
on-line control.  The paper's Section 6 notes this "may be an alternative to
using maximum repetition tolerance and resonant current variation threshold"
for detecting resonant behaviour -- this module builds exactly that
alternative so the two detectors can be compared.

A Haar detail coefficient at dyadic scale ``s`` is the difference between
the sums of the last ``s`` samples and the previous ``s`` samples -- the
same comparison resonance tuning performs at each quarter period, but
restricted to powers of two.  The wavelet detector therefore reuses the
event/chaining machinery with dyadic scales only:

* cheaper hardware: 2 adders cover the Table 1 band where the full detector
  needs 9 (and a dyadic cascade could share partial sums further);
* coarser frequency resolution: band-edge variations fall between scales
  and are detected with less margin (the comparison bench quantifies this).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.detector import ResonanceDetector
from repro.errors import ConfigurationError

__all__ = ["dyadic_scales_for_band", "WaveletDetector"]


def dyadic_scales_for_band(half_periods: Sequence[int]) -> List[int]:
    """Powers of two bracketing the band's quarter periods.

    For the Table 1 band (half-periods 42-59, quarter periods 21-29) this
    returns ``[16, 32]``: the largest scale at or below the smallest quarter
    and the smallest scale at or above the largest one.
    """
    if not half_periods:
        raise ConfigurationError("half_periods must be non-empty")
    quarters = sorted({int(h) // 2 for h in half_periods})
    if quarters[0] < 1:
        raise ConfigurationError("half periods must be at least 2 cycles")
    low = 1
    while low * 2 <= quarters[0]:
        low *= 2
    high = 1
    while high < quarters[-1]:
        high *= 2
    scales = sorted({s for s in (low, high) if s >= 1})
    # Include any intermediate dyadic scales for very wide bands.
    scale = low * 2
    while scale < high:
        scales.append(scale)
        scale *= 2
    return sorted(set(scales))


class WaveletDetector(ResonanceDetector):
    """Resonant-event detection from dyadic Haar detail coefficients."""

    def __init__(
        self,
        half_periods: Sequence[int],
        threshold_amps: float,
        max_repetition_tolerance: int,
        chain_window_slack: int = 4,
    ):
        super().__init__(
            half_periods=half_periods,
            threshold_amps=threshold_amps,
            max_repetition_tolerance=max_repetition_tolerance,
            chain_window_slack=chain_window_slack,
            quarter_periods=dyadic_scales_for_band(half_periods),
        )
