"""On-die current-sensor model (Sections 2.1.4 and 4.1).

The paper senses processor core current directly (not voltage): a few
coarse sensors at the roots of the supply network report each cycle's
current to the nearest whole amp.  We model exactly that: quantization to a
configurable quantum, an optional reporting delay (wire/sensor latency),
and optional peak-to-peak uniform noise for sensitivity studies.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["CurrentSensor"]


class CurrentSensor:
    """Quantizing, optionally delayed and noisy, per-cycle current sensor."""

    def __init__(
        self,
        quantum_amps: float = 1.0,
        delay_cycles: int = 0,
        noise_pp_amps: float = 0.0,
        seed: Optional[int] = 0,
    ):
        if quantum_amps <= 0:
            raise ConfigurationError("quantum_amps must be positive")
        if delay_cycles < 0:
            raise ConfigurationError("delay_cycles must be non-negative")
        if noise_pp_amps < 0:
            raise ConfigurationError("noise_pp_amps must be non-negative")
        self.quantum_amps = quantum_amps
        self.delay_cycles = delay_cycles
        self.noise_pp_amps = noise_pp_amps
        self._rng = np.random.default_rng(seed) if noise_pp_amps else None
        # The delay line holds the most recent `delay` true readings; before
        # it fills, the sensor reports the oldest value it has seen.
        self._delay_line = deque(maxlen=delay_cycles + 1)

    def read(self, true_current_amps: float) -> float:
        """Report this cycle's sensed current (quantized, delayed, noisy)."""
        self._delay_line.append(true_current_amps)
        value = self._delay_line[0]
        if self._rng is not None:
            value += self._rng.uniform(
                -0.5 * self.noise_pp_amps, 0.5 * self.noise_pp_amps
            )
        if not math.isfinite(value):
            # A faulted input cannot be quantized (round() raises on NaN or
            # inf); pass it through so the detector's own hold-last-finite
            # guard decides, instead of crashing inside the sensor.
            return value
        return self.quantum_amps * round(value / self.quantum_amps)

    def reset(self) -> None:
        self._delay_line.clear()
