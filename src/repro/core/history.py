"""History registers for resonant-event detection (Section 3.1).

Two small hardware-like structures:

* :class:`CurrentHistoryRegister` -- the per-cycle current history over the
  last half of the longest band period, kept as a running cumulative sum so
  each quarter-period comparison is O(1) (the paper's "current-history
  adders").
* :class:`EventHistoryRegister` -- a one-bit-per-cycle shift register of
  detected resonant events of one polarity (the paper's high-low and
  low-high histories), long enough to cover the maximum repetition
  tolerance.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, SimulationError

__all__ = ["CurrentHistoryRegister", "EventHistoryRegister"]


class CurrentHistoryRegister:
    """Running cumulative current sums over a sliding cycle window.

    ``quarter_diff(q)`` returns ``sum(last q cycles) - sum(previous q
    cycles)``: positive when current rose (a low-to-high transition),
    negative when it fell.

    The ring stores running cumulative sums, so after millions of cycles
    at tens of amps an unbounded total would dwarf any quarter-period
    window and ``quarter_diff``'s cancellation would eat the low bits.
    Two measures keep the comparison at window precision forever:

    * every time the ring wraps, the oldest retained cumulative value is
      subtracted from every slot (*re-anchoring*), so stored magnitudes
      stay at window scale rather than trace scale;
    * each slot carries a Neumaier compensation term absorbing the
      rounding of its append (and of the re-anchor subtraction), and
      ``quarter_diff`` folds the compensation differences back in.

    Both are exact no-ops on exactly representable traces (e.g. the
    dyadic sensor grid the conformance goldens use): every addition is
    then exact, the compensation terms stay identically zero, and the
    returned bits match the plain running-sum implementation.
    """

    def __init__(self, max_quarter_period: int):
        if max_quarter_period < 1:
            raise ConfigurationError("max_quarter_period must be at least 1")
        self.max_quarter_period = max_quarter_period
        size = 1
        while size < 2 * max_quarter_period + 1:
            size *= 2
        self._size = size
        self._mask = size - 1
        self._cumsum = [0.0] * size
        self._comp = [0.0] * size
        self._cycles_seen = 0

    def append(self, current_amps: float) -> None:
        """Record one cycle's sensed current."""
        index = self._cycles_seen & self._mask
        if index == 0 and self._cycles_seen:
            self._reanchor()
        previous_index = (self._cycles_seen - 1) & self._mask
        previous = self._cumsum[previous_index]
        total = previous + current_amps
        # TwoSum error term of ``previous + current_amps`` (exact under
        # round-to-nearest); zero whenever the addition was exact.
        if (previous if previous >= 0.0 else -previous) >= (
            current_amps if current_amps >= 0.0 else -current_amps
        ):
            error = (previous - total) + current_amps
        else:
            error = (current_amps - total) + previous
        self._cumsum[index] = total
        self._comp[index] = self._comp[previous_index] + error
        self._cycles_seen += 1

    def _reanchor(self) -> None:
        """Subtract the oldest retained cumulative value from every slot.

        Runs once per ring wrap (amortized O(1) per append), right before
        slot 0 -- the oldest value, deterministically -- is overwritten.
        Differences between slots are untouched, so ``quarter_diff`` is
        unaffected except that stored magnitudes drop back to window
        scale; each slot's subtraction rounding goes to its compensation
        term, and is zero when the subtraction was exact.
        """
        anchor = self._cumsum[0]
        if anchor == 0.0:
            return
        cumsum, comp = self._cumsum, self._comp
        abs_anchor = anchor if anchor >= 0.0 else -anchor
        for slot in range(self._size):
            value = cumsum[slot]
            shifted = value - anchor
            if (value if value >= 0.0 else -value) >= abs_anchor:
                error = (value - shifted) - anchor
            else:
                error = ((-anchor) - shifted) + value
            cumsum[slot] = shifted
            comp[slot] += error

    @property
    def cycles_seen(self) -> int:
        return self._cycles_seen

    def ready(self, quarter_period: int) -> bool:
        """True once enough history exists to compare two quarter periods."""
        return self._cycles_seen >= 2 * quarter_period

    def quarter_diff(self, quarter_period: int) -> float:
        """Difference between the two most recent quarter-period sums."""
        if quarter_period < 1 or quarter_period > self.max_quarter_period:
            raise SimulationError(
                f"quarter period {quarter_period} outside register range"
            )
        if not self.ready(quarter_period):
            raise SimulationError("insufficient history for this quarter period")
        newest = (self._cycles_seen - 1) & self._mask
        mid = (self._cycles_seen - 1 - quarter_period) & self._mask
        oldest = (self._cycles_seen - 1 - 2 * quarter_period) & self._mask
        base = (
            self._cumsum[newest]
            - 2.0 * self._cumsum[mid]
            + self._cumsum[oldest]
        )
        correction = (
            self._comp[newest]
            - 2.0 * self._comp[mid]
            + self._comp[oldest]
        )
        # ``correction`` is identically 0.0 on exactly representable
        # traces, leaving ``base`` bit-for-bit unchanged there.
        return base + correction


class EventHistoryRegister:
    """One-bit-per-cycle shift register of resonant events of one polarity."""

    def __init__(self, length_cycles: int):
        if length_cycles < 1:
            raise ConfigurationError("length_cycles must be at least 1")
        self.length_cycles = length_cycles
        size = 1
        while size < length_cycles + 1:
            size *= 2
        self._mask = size - 1
        self._bits = bytearray(size)
        self._cycle = -1

    def shift(self, cycle: int, event: bool) -> None:
        """Record this cycle's event bit (must be called every cycle)."""
        if cycle != self._cycle + 1:
            raise SimulationError(
                f"event history must shift every cycle (got {cycle}, "
                f"expected {self._cycle + 1})"
            )
        self._bits[cycle & self._mask] = 1 if event else 0
        self._cycle = cycle

    def has_event_at(self, cycle: int) -> bool:
        """Was an event recorded at ``cycle`` (and is it still in range)?"""
        if cycle < 0 or cycle > self._cycle:
            return False
        if self._cycle - cycle >= self.length_cycles:
            return False
        return bool(self._bits[cycle & self._mask])

    def latest_event_in(self, start_cycle: int, end_cycle: int) -> "int | None":
        """Most recent event cycle within ``[start_cycle, end_cycle]``."""
        lo = max(start_cycle, self._cycle - self.length_cycles + 1, 0)
        for cycle in range(min(end_cycle, self._cycle), lo - 1, -1):
            if self._bits[cycle & self._mask]:
                return cycle
        return None

    def run_start(self, cycle: int) -> int:
        """First cycle of the consecutive-event run containing ``cycle``.

        Events in consecutive cycles are one physical variation spanning
        several cycles and must count only once (Section 3.1.3); counting
        code uses the run's start as the event's canonical cycle.
        """
        if not self.has_event_at(cycle):
            raise SimulationError(f"no event at cycle {cycle}")
        start = cycle
        while start > 0 and self.has_event_at(start - 1):
            start -= 1
        return start
