"""Band-wide resonant-event detection (Section 3.1).

Each cycle the detector appends the sensed current to the current-history
register and, for every quarter period ``q`` in the resonance band, compares
the sum of the most recent ``q`` cycles against the previous ``q`` cycles.
A difference of at least ``M q / 2`` (the paper's ``M T / 8`` with
``q = T/4``) flags a resonant event: *high-low* when current fell, *low-high*
when it rose.  Distinct half-periods sharing a quarter length share an adder,
so the Table 1 band (half-periods 42-59) needs only the quarter sums for
q = 21..29 -- the paper's "up to 9 current-history adders".

Events are recorded in per-polarity one-bit shift registers.  When a new
event occurs, the *resonant event count* is the length of the chain of
alternating-polarity events spaced half-periods apart ending at it
(Section 3.1.2), with events in consecutive cycles deduplicated as one
physical variation (Section 3.1.3).

Count semantics between events follow Section 5.1.2: the count reported by
:meth:`ResonanceDetector.current_count` holds while events keep arriving
within one half-period and "falls off" (to zero) when the high-low history
stops detecting events -- nascent resonance has broken.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.core.history import CurrentHistoryRegister, EventHistoryRegister

__all__ = ["Polarity", "ResonantEvent", "ResonanceDetector", "COUNTER_CAP"]

#: Saturation value for the detector's event counters, mirroring a 31-bit
#: hardware counter: counts clamp here instead of growing without bound
#: (or, in hardware, wrapping to zero and losing the engagement history).
COUNTER_CAP = (1 << 31) - 1


class Polarity(IntEnum):
    """Direction of a resonant current transition."""

    HIGH_LOW = 0
    LOW_HIGH = 1

    @property
    def opposite(self) -> "Polarity":
        return Polarity.LOW_HIGH if self is Polarity.HIGH_LOW else Polarity.HIGH_LOW


@dataclass(frozen=True)
class ResonantEvent:
    """One detected resonant event and the chain ending at it."""

    cycle: int
    polarity: Polarity
    count: int
    chain_cycles: Tuple[int, ...]


class ResonanceDetector:
    """Detects nascent resonance from per-cycle sensed current."""

    def __init__(
        self,
        half_periods: Sequence[int],
        threshold_amps: float,
        max_repetition_tolerance: int,
        chain_window_slack: int = 4,
        quarter_periods: "Optional[Sequence[int]]" = None,
    ):
        if not half_periods:
            raise ConfigurationError("half_periods must be non-empty")
        if threshold_amps <= 0:
            raise ConfigurationError("threshold_amps must be positive")
        if max_repetition_tolerance < 2:
            raise ConfigurationError("max_repetition_tolerance must be at least 2")
        self.half_periods = sorted(set(int(h) for h in half_periods))
        if self.half_periods[0] < 2:
            raise ConfigurationError("half periods must be at least 2 cycles")
        self.threshold_amps = threshold_amps
        self.max_repetition_tolerance = max_repetition_tolerance
        if chain_window_slack < 0:
            raise ConfigurationError("chain_window_slack must be non-negative")
        self._h_min = self.half_periods[0]
        self._h_max = self.half_periods[-1]
        # Detection lags a transition by up to a quarter period, and the lag
        # is longer for a first event (the history must fill) than for later
        # ones.  A few cycles of slack on the near edge of the probe window
        # keeps such pairs chained.
        self._chain_slack = min(chain_window_slack, self._h_min - 1)
        #: one adder per distinct quarter period (with its MT/8 threshold);
        #: an explicit override lets alternative detectors (e.g. the dyadic
        #: wavelet scales of ref [11]) reuse the event/counting machinery
        if quarter_periods is None:
            self._quarters = sorted({h // 2 for h in self.half_periods})
        else:
            self._quarters = sorted({int(q) for q in quarter_periods})
            if self._quarters[0] < 1:
                raise ConfigurationError("quarter periods must be >= 1")
        self._current_history = CurrentHistoryRegister(self._quarters[-1])
        register_length = max_repetition_tolerance * self._h_max
        self._histories = {
            Polarity.HIGH_LOW: EventHistoryRegister(register_length),
            Polarity.LOW_HIGH: EventHistoryRegister(register_length),
        }
        self.register_length = register_length
        self.last_event: Optional[ResonantEvent] = None
        self.total_events = 0
        #: per-polarity event counts (observability harvest; plain ints so
        #: the hot loop never touches the metrics registry)
        self.events_by_polarity = {
            Polarity.HIGH_LOW: 0, Polarity.LOW_HIGH: 0,
        }
        #: quarter-period comparisons actually performed (one per ready
        #: adder per cycle -- the hardware's comparator activity)
        self.comparisons = 0
        #: non-finite sensed samples survived (saturating diagnostic counter)
        self.nonfinite_samples = 0
        self._last_finite_amps = 0.0
        self._cycle = -1

    # ------------------------------------------------------------------
    def observe(self, cycle: int, sensed_current_amps: float) -> Optional[ResonantEvent]:
        """Feed one cycle of sensed current; returns a new event, if any.

        Must be called exactly once per cycle with consecutive cycle numbers.
        """
        self._cycle = cycle
        if not math.isfinite(sensed_current_amps):
            # A NaN inside the quarter-period sums would poison every adder
            # for a full history window; hold the last finite reading
            # instead (the hardware analogue of ignoring a parity-failed
            # report) and keep a saturating count of how often it happened.
            self.nonfinite_samples = min(self.nonfinite_samples + 1, COUNTER_CAP)
            sensed_current_amps = self._last_finite_amps
        else:
            self._last_finite_amps = sensed_current_amps
        history = self._current_history
        history.append(sensed_current_amps)

        best_magnitude = 0.0
        polarity: Optional[Polarity] = None
        comparisons = 0
        for quarter in self._quarters:
            if not history.ready(quarter):
                continue
            comparisons += 1
            diff = history.quarter_diff(quarter)
            threshold = 0.5 * self.threshold_amps * quarter
            magnitude = abs(diff)
            if magnitude >= threshold and magnitude / quarter > best_magnitude:
                best_magnitude = magnitude / quarter
                polarity = Polarity.LOW_HIGH if diff > 0 else Polarity.HIGH_LOW

        self.comparisons = min(self.comparisons + comparisons, COUNTER_CAP)
        self._histories[Polarity.HIGH_LOW].shift(
            cycle, polarity is Polarity.HIGH_LOW
        )
        self._histories[Polarity.LOW_HIGH].shift(
            cycle, polarity is Polarity.LOW_HIGH
        )
        if polarity is None:
            return None

        chain = self._trace_chain(cycle, polarity)
        event = ResonantEvent(
            cycle=cycle, polarity=polarity, count=len(chain),
            chain_cycles=tuple(chain),
        )
        self.last_event = event
        self.total_events = min(self.total_events + 1, COUNTER_CAP)
        self.events_by_polarity[polarity] = min(
            self.events_by_polarity[polarity] + 1, COUNTER_CAP
        )
        return event

    def _trace_chain(self, cycle: int, polarity: Polarity) -> List[int]:
        """Walk back through alternating-polarity events half-periods apart."""
        chain = [cycle]
        reference = cycle
        expected = polarity.opposite
        # Counting past the tolerance serves no purpose (the second-level
        # response engages below it), so cap the walk one above it.
        while len(chain) <= self.max_repetition_tolerance:
            register = self._histories[expected]
            found = register.latest_event_in(
                reference - self._h_max,
                reference - self._h_min + self._chain_slack,
            )
            if found is None:
                break
            # A run of consecutive event cycles is one physical variation
            # (Section 3.1.3): anchor the next window at the run's start so
            # a wide variation is not chained against itself.
            chain.append(found)
            reference = register.run_start(found)
            expected = expected.opposite
        return chain

    # ------------------------------------------------------------------
    def current_count(self, cycle: int) -> int:
        """The resonant event count as of ``cycle`` (Section 5.1.2 semantics).

        Holds the last event's chain count while events remain fresh (the
        last event is at most a half-period old and its chain members are
        still inside the shift registers); falls to zero once detection goes
        quiet for longer than the largest half-period.
        """
        event = self.last_event
        if event is None:
            return 0
        if cycle - event.cycle > self._h_max:
            return 0
        return sum(
            1 for c in event.chain_cycles if cycle - c < self.register_length
        )

    @property
    def band_half_period_range(self) -> Tuple[int, int]:
        return self._h_min, self._h_max

    @property
    def adder_count(self) -> int:
        """Number of quarter-period adders the hardware needs (Section 3.3)."""
        return len(self._quarters)
