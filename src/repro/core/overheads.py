"""Hardware cost and energy overhead of resonance tuning (Section 3.3).

The paper itemizes the implementation cost:

* current sensors: ~1000 transistors each, a few at the roots of the supply
  network, no series resistance (so effectively free in energy);
* current-history values and sums: 7-bit integers (whole-amp precision over
  a ~100 A range);
* up to 9 current-history adders for the Table 1 band, with a combined
  per-cycle energy "approximately equivalent to that of one 64-bit adder";
* high-low and low-high histories: n-bit shift registers with n the cycles
  in the maximum repetition tolerance (~150 in the Section 2 example, 236
  for Table 1).

Section 4.1 then notes the modelled overhead is "small (< 1 % of processor
energy)".  This module reproduces that accounting: a transistor-count
inventory and a per-cycle energy estimate that the simulation charges on
top of the processor's energy, so the reported energy-delay of resonance
tuning includes its own hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessorConfig
from repro.core.detector import ResonanceDetector
from repro.errors import ConfigurationError

__all__ = ["DetectorOverheads", "estimate_overheads"]

#: Transistors per current sensor (Kim et al., the paper's ref [12]).
_SENSOR_TRANSISTORS = 1000
#: Sensors placed at the roots of the supply network (Section 2.1.4).
_SENSOR_COUNT = 4
#: Bits per current-history entry ("7-bit integers", Section 3.3).
_VALUE_BITS = 7
#: Transistors per register bit (a standard-cell flip-flop).
_TRANSISTORS_PER_BIT = 20
#: Transistors per full-adder bit (mirror adder).
_TRANSISTORS_PER_ADDER_BIT = 28


@dataclass(frozen=True)
class DetectorOverheads:
    """Inventory and energy estimate of the tuning hardware."""

    adder_count: int
    adder_bits: int
    current_history_bits: int
    event_history_bits: int
    sensor_transistors: int
    logic_transistors: int
    #: fraction of one 64-bit-adder-equivalent consumed per cycle
    adder_energy_equivalent_64bit: float
    #: per-cycle overhead energy in joules (charged by the simulation)
    energy_per_cycle_joules: float

    @property
    def total_transistors(self) -> int:
        return self.sensor_transistors + self.logic_transistors

    def energy_fraction_of(self, processor_power_watts: float,
                           cycle_seconds: float) -> float:
        """Overhead as a fraction of a given processor power level."""
        if processor_power_watts <= 0 or cycle_seconds <= 0:
            raise ConfigurationError("power and cycle time must be positive")
        processor_energy = processor_power_watts * cycle_seconds
        return self.energy_per_cycle_joules / processor_energy


def estimate_overheads(
    detector: ResonanceDetector,
    processor_config: ProcessorConfig,
    vdd_volts: float = 1.0,
    clock_hz: float = 10e9,
    energy_per_adder_bit_joules: float = 5e-16,
) -> DetectorOverheads:
    """Estimate Section 3.3's hardware costs for a concrete detector.

    ``energy_per_adder_bit_joules`` is a switching-energy-per-bit constant;
    the default is chosen so nine 7-bit history adders land near the paper's
    "one 64-bit adder" per-cycle equivalent and the total stays well under
    1 % of processor energy.
    """
    adders = detector.adder_count
    # One 7-bit quarter-sum comparison per adder per cycle: nine adders at
    # 7 bits is the paper's "approximately ... one 64-bit adder".
    adder_bits = adders * _VALUE_BITS
    history_depth = 2 * max(
        h // 2 for h in detector.half_periods
    ) + 1
    current_history_bits = history_depth * _VALUE_BITS
    event_history_bits = 2 * detector.register_length

    logic_transistors = (
        adder_bits * _TRANSISTORS_PER_ADDER_BIT
        + (current_history_bits + event_history_bits) * _TRANSISTORS_PER_BIT
    )

    # Per-cycle energy: every adder bit switches, a handful of register bits
    # shift (one new entry per structure per cycle, not the whole register).
    shifting_bits = 3 * _VALUE_BITS + 2  # new history entry + two event bits
    energy = (adder_bits + shifting_bits) * energy_per_adder_bit_joules

    return DetectorOverheads(
        adder_count=adders,
        adder_bits=adder_bits,
        current_history_bits=current_history_bits,
        event_history_bits=event_history_bits,
        sensor_transistors=_SENSOR_COUNT * _SENSOR_TRANSISTORS,
        logic_transistors=logic_transistors,
        adder_energy_equivalent_64bit=adder_bits / 64.0,
        energy_per_cycle_joules=energy,
    )
