"""Controller interface shared by resonance tuning and the baselines.

A noise controller sees, each cycle, the processor current (what the
on-die sensors report on) and the supply-voltage deviation (what ref [10]
senses), and produces the next cycle's :class:`ControlDirectives`.

The simulation loop calls ``directives(cycle)`` *before* stepping the
processor and ``observe(cycle, ...)`` after, so a controller's reaction to
cycle ``t`` can influence cycle ``t + 1`` at the earliest -- a one-cycle
sensing loop, on top of which each technique models its own extra delay.
"""

from __future__ import annotations

import abc

from repro.uarch.pipeline import ControlDirectives, NO_CONTROL

__all__ = ["NoiseController", "NullController"]


class NoiseController(abc.ABC):
    """Per-cycle control interface for inductive-noise techniques."""

    #: short identifier used in result tables
    name: str = "controller"

    #: Declares that this controller closes no loop around the supply:
    #: ``directives(cycle)`` is a pure function of the cycle index, and
    #: nothing fed to ``observe`` (nor the order it is fed in) influences
    #: later directives, ``response_cycle_fractions`` or
    #: ``overhead_energy_joules``.  The simulation uses this to take the
    #: vectorized kernel fast path (``repro.core.kernel``), which runs
    #: the whole processor trace first and delivers ``observe`` calls
    #: after the supply has been advanced in bulk.  Controllers that
    #: react to what they observe must leave this False.
    feedback_free: bool = False

    @abc.abstractmethod
    def directives(self, cycle: int) -> ControlDirectives:
        """Directives to apply to the processor in ``cycle``."""

    @abc.abstractmethod
    def observe(
        self,
        cycle: int,
        current_amps: float,
        voltage_volts: float,
        stats=None,
    ) -> None:
        """Record what happened in ``cycle`` after the processor stepped.

        ``stats`` is the cycle's :class:`~repro.uarch.pipeline.CycleStats`
        when available (the damping baseline reads its per-cycle issued
        current estimate from it); synthetic open-loop drivers may omit it.
        """

    @property
    def response_cycle_fractions(self) -> dict:
        """Fractions of cycles spent in each response level (for tables)."""
        return {}

    def overhead_energy_joules(self, n_cycles: int) -> float:
        """Energy the technique's own hardware consumed over ``n_cycles``.

        Charged on top of the processor energy by the simulation (the paper
        models resonance tuning's detection hardware this way, Section 4.1);
        the default is zero for techniques whose hardware we do not cost.
        """
        return 0.0


class NullController(NoiseController):
    """The base processor: no noise control at all."""

    name = "base"
    feedback_free = True

    def directives(self, cycle: int) -> ControlDirectives:
        return NO_CONTROL

    def observe(
        self, cycle: int, current_amps: float, voltage_volts: float, stats=None
    ) -> None:
        return None
