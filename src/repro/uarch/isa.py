"""Instruction classes for the trace-driven processor model.

The simulator executes statistical traces rather than a real ISA (see the
substitution table in DESIGN.md), so an "instruction" is an operation class
plus dependency and memory-behaviour annotations.  Operation classes map to
the Table 1 functional units: integer ALUs and multipliers, floating-point
ALUs and multipliers, the two-ported L1 data cache, and the branch unit.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["OpClass", "MemLevel", "EXECUTION_LATENCY", "FU_FOR_OP"]


class OpClass(IntEnum):
    """Operation classes; values index numpy trace arrays."""

    INT_ALU = 0
    INT_MUL = 1
    FP_ALU = 2
    FP_MUL = 3
    LOAD = 4
    STORE = 5
    BRANCH = 6

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)


class MemLevel(IntEnum):
    """Where a memory operation hits in the hierarchy."""

    NONE = -1
    L1 = 0
    L2 = 1
    MEMORY = 2


#: Execution latency in cycles for non-memory operations (memory operations
#: take their latency from the cache hierarchy).  Branches execute on the
#: integer ALUs.
EXECUTION_LATENCY = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.FP_ALU: 2,
    OpClass.FP_MUL: 4,
    OpClass.BRANCH: 1,
}

#: Which functional-unit pool each operation class occupies.
FU_FOR_OP = {
    OpClass.INT_ALU: "int_alu",
    OpClass.INT_MUL: "int_mul",
    OpClass.FP_ALU: "fp_alu",
    OpClass.FP_MUL: "fp_mul",
    OpClass.BRANCH: "int_alu",
    OpClass.LOAD: "cache_port",
    OpClass.STORE: "cache_port",
}
