"""Synthetic instruction traces and their statistical profiles.

The paper drives Wattch/SimpleScalar with SPEC2K Alpha binaries.  We have no
binaries or toolchain, so (per the DESIGN.md substitution table) each
benchmark is replaced by a *statistical profile* from which a deterministic,
seeded synthetic trace is generated.  A profile controls:

* the instruction mix (loads, stores, branches, integer/FP compute),
* instruction-level parallelism via producer-consumer distances,
* cache-miss and branch-misprediction behaviour, and
* *burst structure*: periodic serializing cache misses that alternate the
  pipeline between high-activity and stalled phases.  The burst period (in
  cycles, emergent from the pipeline) determines whether a benchmark's
  current variations fall inside the resonance band -- this is what makes
  the "violating" benchmarks of Table 2 violate.

Traces are numpy-backed and wrap around when the simulation outruns them,
modelling steady-state behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, TraceError
from repro.uarch.isa import MemLevel, OpClass

__all__ = ["WorkloadProfile", "SyntheticTrace", "generate_trace"]

#: Producer distances are capped so the pipeline's dependency window (a
#: sliding buffer of recent completion times) can stay small.
MAX_DEP_DISTANCE = 256


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one benchmark's dynamic behaviour."""

    name: str
    description: str = ""
    # --- instruction mix (fractions of all instructions) ---
    frac_load: float = 0.25
    frac_store: float = 0.10
    frac_branch: float = 0.12
    frac_fp: float = 0.0        # fraction of *compute* ops that are FP
    frac_mul: float = 0.10      # fraction of compute ops that are multiplies
    # --- dependency structure ---
    mean_dep_distance: float = 6.0
    dep2_probability: float = 0.35
    # --- memory behaviour ---
    l1_miss_rate: float = 0.02          # per memory operation
    l2_miss_rate: float = 0.10          # per L1 miss (escalates to memory)
    icache_miss_rate: float = 0.0       # per instruction (frontend stalls)
    branch_mispredict_rate: float = 0.03
    #: "random" draws mispredictions independently at the configured rate;
    #: "gshare" synthesizes per-static-branch outcome streams and runs a
    #: real gshare predictor over them, giving bursty (loop-exit-clustered)
    #: mispredictions whose rate is emergent
    branch_model: str = "random"
    # --- oscillation structure (what creates current variation) ---
    #: instructions per full high/low activity oscillation; 0 disables
    osc_period_instrs: int = 0
    #: "serial" = low-ILP dependency chain, "l2" = L2-missing load,
    #: "mem" = memory-missing load (ROB-fill stall), "none" = no oscillation
    osc_kind: str = "none"
    #: length of the low-activity segment in instructions
    osc_low_instrs: int = 24
    #: +/- jitter on each oscillation boundary; large jitter keeps the
    #: variation from repeating coherently at one frequency
    osc_jitter_instrs: int = 0
    #: rewrite the high segment into width-limited independent work, so the
    #: high phase saturates the machine regardless of the background ILP
    osc_boost_ilp: bool = False
    #: dependency wavefront width of the boosted segment: every boosted
    #: instruction depends on the one this many positions back, capping the
    #: hot phase at roughly this many instructions per cycle (over the mean
    #: execution latency); 0 means fully independent (width-limited)
    osc_boost_dep: int = 0
    #: oscillation periods per episode; 0 means the oscillation never stops
    osc_episode_periods: int = 0
    #: quiet instructions between episodes (only with episodic oscillation)
    osc_gap_instrs: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        fractions = (
            self.frac_load,
            self.frac_store,
            self.frac_branch,
            self.frac_fp,
            self.frac_mul,
        )
        if any(not 0.0 <= f <= 1.0 for f in fractions):
            raise ConfigurationError(f"{self.name}: mix fractions must be in [0, 1]")
        if self.frac_load + self.frac_store + self.frac_branch > 0.9:
            raise ConfigurationError(
                f"{self.name}: loads+stores+branches leave no room for compute"
            )
        rates = (
            self.l1_miss_rate,
            self.l2_miss_rate,
            self.branch_mispredict_rate,
            self.icache_miss_rate,
        )
        if any(not 0.0 <= r <= 1.0 for r in rates):
            raise ConfigurationError(f"{self.name}: rates must be in [0, 1]")
        if self.mean_dep_distance < 1.0:
            raise ConfigurationError(f"{self.name}: mean_dep_distance must be >= 1")
        if self.osc_kind not in ("none", "serial", "l2", "mem"):
            raise ConfigurationError(f"{self.name}: unknown osc_kind {self.osc_kind!r}")
        if self.branch_model not in ("random", "gshare"):
            raise ConfigurationError(
                f"{self.name}: unknown branch_model {self.branch_model!r}"
            )
        if self.osc_period_instrs < 0 or self.osc_low_instrs < 0:
            raise ConfigurationError(f"{self.name}: oscillation fields must be >= 0")
        if self.osc_period_instrs and self.osc_period_instrs <= self.osc_low_instrs:
            raise ConfigurationError(
                f"{self.name}: oscillation period must exceed the low segment"
            )
        if self.osc_episode_periods < 0 or self.osc_gap_instrs < 0:
            raise ConfigurationError(f"{self.name}: episode fields must be >= 0")
        if self.osc_episode_periods and not self.osc_gap_instrs:
            raise ConfigurationError(
                f"{self.name}: episodic oscillation needs a non-zero gap"
            )

    def with_seed(self, seed: int) -> "WorkloadProfile":
        """Return a copy that generates a different random trace."""
        return replace(self, seed=seed)


@dataclass
class SyntheticTrace:
    """A generated instruction stream (numpy column arrays).

    ``dep1``/``dep2`` are distances back to producer instructions (0 means no
    dependency); ``mem_level`` is -1 for non-memory operations; ``mispredict``
    marks branches resolved as mispredicted.
    """

    profile: WorkloadProfile
    op_class: np.ndarray
    dep1: np.ndarray
    dep2: np.ndarray
    mem_level: np.ndarray
    mispredict: np.ndarray
    icache_miss: Optional[np.ndarray] = None
    _mix_counts: Optional[dict] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        n = len(self.op_class)
        if self.icache_miss is None:
            self.icache_miss = np.zeros(n, dtype=bool)
        for name in ("dep1", "dep2", "mem_level", "mispredict", "icache_miss"):
            if len(getattr(self, name)) != n:
                raise TraceError(f"trace column {name} has mismatched length")

    def __len__(self) -> int:
        return len(self.op_class)

    def mix_counts(self) -> dict:
        """Instruction counts per :class:`OpClass` (cached)."""
        if self._mix_counts is None:
            values, counts = np.unique(self.op_class, return_counts=True)
            self._mix_counts = {
                OpClass(int(v)): int(c) for v, c in zip(values, counts)
            }
        return self._mix_counts

    def memory_fraction(self) -> float:
        counts = self.mix_counts()
        n_mem = counts.get(OpClass.LOAD, 0) + counts.get(OpClass.STORE, 0)
        return n_mem / len(self)


def generate_trace(
    profile: WorkloadProfile, n_instructions: int, seed: Optional[int] = None
) -> SyntheticTrace:
    """Generate a deterministic synthetic trace from a profile.

    The same ``(profile, n_instructions, seed)`` always yields the same
    trace, so experiments are reproducible.
    """
    if n_instructions <= 0:
        raise TraceError("n_instructions must be positive")
    rng = np.random.default_rng(profile.seed if seed is None else seed)
    n = n_instructions

    op = _draw_op_classes(profile, n, rng)
    dep1, dep2 = _draw_dependencies(profile, n, rng)
    mem_level = _draw_memory_levels(profile, op, rng)
    mispredict = _draw_mispredicts(profile, op, rng)
    icache_miss = rng.random(n) < profile.icache_miss_rate
    if profile.osc_period_instrs and profile.osc_kind != "none":
        _overlay_oscillation(profile, op, dep1, dep2, mem_level, mispredict, rng)

    return SyntheticTrace(
        profile=profile,
        op_class=op,
        dep1=dep1,
        dep2=dep2,
        mem_level=mem_level,
        mispredict=mispredict,
        icache_miss=icache_miss,
    )


def _draw_op_classes(
    profile: WorkloadProfile, n: int, rng: np.random.Generator
) -> np.ndarray:
    frac_compute = 1.0 - profile.frac_load - profile.frac_store - profile.frac_branch
    compute_fp = frac_compute * profile.frac_fp
    compute_int = frac_compute - compute_fp
    probabilities = np.array(
        [
            compute_int * (1.0 - profile.frac_mul),   # INT_ALU
            compute_int * profile.frac_mul,           # INT_MUL
            compute_fp * (1.0 - profile.frac_mul),    # FP_ALU
            compute_fp * profile.frac_mul,            # FP_MUL
            profile.frac_load,                        # LOAD
            profile.frac_store,                       # STORE
            profile.frac_branch,                      # BRANCH
        ]
    )
    probabilities = probabilities / probabilities.sum()
    return rng.choice(7, size=n, p=probabilities).astype(np.int8)


def _draw_dependencies(profile: WorkloadProfile, n: int, rng: np.random.Generator):
    mean = profile.mean_dep_distance
    dep1 = 1 + rng.geometric(p=min(1.0, 1.0 / mean), size=n) - 1
    dep1 = np.clip(dep1, 1, MAX_DEP_DISTANCE).astype(np.int32)
    has_dep2 = rng.random(n) < profile.dep2_probability
    dep2 = 1 + rng.geometric(p=min(1.0, 1.0 / mean), size=n) - 1
    dep2 = np.where(has_dep2, np.clip(dep2, 1, MAX_DEP_DISTANCE), 0).astype(np.int32)
    indices = np.arange(n, dtype=np.int32)
    dep1 = np.minimum(dep1, indices)
    dep2 = np.minimum(dep2, indices)
    return dep1, dep2


def _draw_memory_levels(
    profile: WorkloadProfile, op: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    n = len(op)
    mem_level = np.full(n, int(MemLevel.NONE), dtype=np.int8)
    is_mem = (op == int(OpClass.LOAD)) | (op == int(OpClass.STORE))
    miss1 = rng.random(n) < profile.l1_miss_rate
    miss2 = rng.random(n) < profile.l2_miss_rate
    level = np.where(miss1, np.where(miss2, int(MemLevel.MEMORY), int(MemLevel.L2)),
                     int(MemLevel.L1))
    mem_level[is_mem] = level[is_mem]
    return mem_level


def _draw_mispredicts(
    profile: WorkloadProfile, op: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    n = len(op)
    mispredict = np.zeros(n, dtype=bool)
    is_branch = op == int(OpClass.BRANCH)
    n_branches = int(is_branch.sum())
    if n_branches == 0:
        return mispredict
    if profile.branch_model == "gshare":
        from repro.uarch.branch_predictor import simulate_mispredicts

        mispredict[is_branch] = simulate_mispredicts(n_branches, rng)
    else:
        mispredict[is_branch] = rng.random(n_branches) < (
            profile.branch_mispredict_rate
        )
    return mispredict


def _overlay_oscillation(
    profile: WorkloadProfile,
    op: np.ndarray,
    dep1: np.ndarray,
    dep2: np.ndarray,
    mem_level: np.ndarray,
    mispredict: np.ndarray,
    rng: np.random.Generator,
) -> None:
    """Impose a periodic high/low activity structure on the trace.

    Every ``osc_period_instrs`` instructions (with optional jitter) a
    low-activity segment of ``osc_low_instrs`` instructions begins:

    * ``"serial"`` -- the segment becomes a single-dependency chain of
      integer ALU operations: it executes one instruction per cycle, so
      current drops for roughly ``osc_low_instrs`` cycles, then the
      independent instructions queued behind it issue in a burst.
    * ``"l2"`` / ``"mem"`` -- the segment head becomes a load missing to L2
      or memory and the rest of the segment depends on it.  Commit blocks at
      the load, the reorder buffer fills, dispatch stalls, and current stays
      low until the miss returns (the paper's Figure 4 shows exactly this
      flat-current window in *parser*).

    The oscillation period *in cycles* is emergent (roughly the low-segment
    stall plus the high segment divided by its IPC); profiles are tuned so
    violating benchmarks land inside the 84-119-cycle resonance band and
    benign ones do not.
    """
    n = len(op)
    period = profile.osc_period_instrs
    jitter = profile.osc_jitter_instrs
    kind = profile.osc_kind
    episode_periods = profile.osc_episode_periods
    position = period
    periods_done = 0
    while position < n - 1:
        if jitter:
            position += int(rng.integers(-jitter, jitter + 1))
            position = max(1, position)
            if position >= n - 1:
                break
        low_span = _write_low_segment(profile, position, op, dep1, dep2,
                                      mem_level, mispredict)
        if profile.osc_boost_ilp:
            _write_boosted_high_segment(
                position + low_span,
                min(position + period, n),
                profile.osc_boost_dep,
                dep1, dep2, mem_level, mispredict,
            )
        position += period
        periods_done += 1
        if episode_periods and periods_done >= episode_periods:
            periods_done = 0
            position += profile.osc_gap_instrs


def _write_low_segment(profile, position, op, dep1, dep2, mem_level, mispredict):
    """Write one low-activity segment; return the instructions it spans."""
    n = len(op)
    kind = profile.osc_kind
    tail = min(profile.osc_low_instrs, n - 1 - position)
    if kind == "serial":
        for offset in range(tail):
            index = position + offset
            op[index] = int(OpClass.INT_ALU)
            mem_level[index] = int(MemLevel.NONE)
            mispredict[index] = False
            dep1[index] = min(1, index)
            dep2[index] = 0
        return tail
    op[position] = int(OpClass.LOAD)
    mem_level[position] = int(MemLevel.MEMORY) if kind == "mem" else int(MemLevel.L2)
    mispredict[position] = False
    dep1[position] = min(1, position)
    dep2[position] = 0
    for offset in range(1, tail + 1):
        index = position + offset
        if index >= n:
            break
        dep1[index] = offset            # depend on the missing load
        dep2[index] = 0
        mispredict[index] = False
        if mem_level[index] == int(MemLevel.MEMORY):
            mem_level[index] = int(MemLevel.L1)  # one stall at a time
    return tail + 1


def _write_boosted_high_segment(
    start, end, boost_dep, dep1, dep2, mem_level, mispredict
):
    """Make ``[start, end)`` a hot phase: regular dependencies, no misses.

    With ``boost_dep == 0`` every instruction depends far back (already
    complete), so the segment issues as fast as the machine allows.  With a
    positive ``boost_dep`` each instruction depends on the one ``boost_dep``
    positions earlier, forming a dependency wavefront that caps the phase at
    roughly ``boost_dep`` instructions per mean-latency cycle -- this keeps
    the hot-phase current (and hence the variation amplitude) moderate, near
    the resonant current variation threshold rather than far above it.
    Memory operations are forced to L1 hits (a miss inside the hot phase
    would truncate it).
    """
    for index in range(start, end):
        if boost_dep > 0:
            distance = boost_dep
        else:
            distance = 80 + (index * 7) % 40
        dep1[index] = min(distance, index)
        dep2[index] = 0
        mispredict[index] = False
        if mem_level[index] > int(MemLevel.L1):
            mem_level[index] = int(MemLevel.L1)
