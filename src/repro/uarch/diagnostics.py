"""Workload characterization: what a profile actually does on the machine.

Used when tuning synthetic profiles (see `tools/probe_workloads.py`) and by
tests that pin each benchmark's emergent behaviour: IPC, per-cycle current
statistics, the dominant oscillation period of the current waveform and
whether it falls inside a supply's resonance band, and the violation
fraction on a given supply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import (
    PowerSupplyConfig,
    ProcessorConfig,
    TABLE1_PROCESSOR,
    TABLE1_SUPPLY,
)
from repro.errors import SimulationError
from repro.power.rlc import RLCAnalysis
from repro.power.supply import PowerSupply
from repro.uarch.processor import Processor
from repro.uarch.trace import WorkloadProfile

__all__ = ["WorkloadCharacter", "characterize", "dominant_period_cycles"]


def dominant_period_cycles(currents: np.ndarray) -> float:
    """Period (in cycles) of the strongest spectral component of a waveform."""
    currents = np.asarray(currents, dtype=float)
    if len(currents) < 16:
        raise SimulationError("need at least 16 samples for a spectrum")
    centred = currents - currents.mean()
    spectrum = np.abs(np.fft.rfft(centred * np.hanning(len(centred))))
    frequencies = np.fft.rfftfreq(len(centred), d=1.0)
    peak = int(np.argmax(spectrum[1:])) + 1
    return 1.0 / frequencies[peak]


@dataclass(frozen=True)
class WorkloadCharacter:
    """Emergent behaviour of one profile on one processor + supply."""

    name: str
    cycles: int
    ipc: float
    current_low_amps: float      # 2nd percentile
    current_high_amps: float     # 98th percentile
    current_mean_amps: float
    dominant_period_cycles: float
    period_in_band: bool
    violation_fraction: float

    @property
    def current_swing_amps(self) -> float:
        return self.current_high_amps - self.current_low_amps


def characterize(
    profile: WorkloadProfile,
    n_cycles: int = 30_000,
    warmup_cycles: int = 2_000,
    processor_config: Optional[ProcessorConfig] = None,
    supply_config: Optional[PowerSupplyConfig] = None,
    seed: Optional[int] = None,
) -> WorkloadCharacter:
    """Run the profile on the base processor and summarize its behaviour."""
    processor_config = processor_config or TABLE1_PROCESSOR
    supply_config = supply_config or TABLE1_SUPPLY
    processor = Processor.from_profile(
        profile,
        n_instructions=max(20_000, int((n_cycles + warmup_cycles) * 4.5)),
        config=processor_config,
        supply_config=supply_config,
        seed=seed,
    )
    supply = PowerSupply(
        supply_config, initial_current=processor_config.min_current_amps
    )
    currents = np.zeros(n_cycles)
    violations = 0
    for cycle in range(warmup_cycles + n_cycles):
        stats = processor.step()
        voltage = supply.step(stats.current_amps)
        if cycle >= warmup_cycles:
            currents[cycle - warmup_cycles] = stats.current_amps
            if abs(voltage) > supply_config.noise_margin_volts:
                violations += 1

    period = dominant_period_cycles(currents)
    band = RLCAnalysis(supply_config).band
    return WorkloadCharacter(
        name=profile.name,
        cycles=n_cycles,
        ipc=processor.ipc,
        current_low_amps=float(np.percentile(currents, 2)),
        current_high_amps=float(np.percentile(currents, 98)),
        current_mean_amps=float(np.mean(currents)),
        dominant_period_cycles=period,
        period_in_band=band.contains_period(round(period)),
        violation_fraction=violations / n_cycles,
    )
