"""The 26 SPEC2K benchmark stand-ins (Table 2 of the paper).

Each profile is a statistical model tuned so that, on the Table 1 processor
and power supply, (a) the base IPC approximates the paper's Table 2 value
and (b) the benchmark falls on the paper's side of the violating /
non-violating split, with violation-cycle fractions ordered like the
paper's (lucas and swim worst, applu/facerec/gcc-class rare).

Violating benchmarks carry *resonant episodes*: stretches of several
oscillation periods whose emergent period lands inside the 84-119-cycle
resonance band, separated by quiet gaps.  Episode cadence controls the
violation fraction independently of the background statistics that set the
IPC.  The paper's rarest violators (fractions of 1e-7) would be invisible
at our run lengths, so their cadences are scaled up to stay observable --
the *ordering* of violation fractions is preserved, not the absolute
values (see EXPERIMENTS.md).

The numeric knobs were fitted empirically against this repository's
pipeline (``tests/test_workloads.py`` pins the envelope each profile must
stay inside); they are stand-ins for program behaviour, not measurements of
the real SPEC binaries.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.uarch.trace import WorkloadProfile

__all__ = [
    "SPEC2K",
    "VIOLATING_NAMES",
    "NON_VIOLATING_NAMES",
    "PAPER_IPC",
    "PAPER_VIOLATION_FRACTION",
    "profile_by_name",
]

#: Base IPCs the paper reports in Table 2 (used as tuning targets only).
PAPER_IPC = {
    "ammp": 0.44, "applu": 1.97, "apsi": 1.85, "art": 1.49, "bzip": 2.19,
    "crafty": 2.25, "eon": 2.72, "equake": 4.00, "facerec": 2.60,
    "fma3d": 4.11, "galgel": 3.61, "gap": 2.84, "gcc": 2.13, "gzip": 2.01,
    "lucas": 0.85, "mcf": 0.38, "mesa": 3.34, "mgrid": 2.88, "parser": 1.71,
    "perlbmk": 1.34, "sixtrack": 3.31, "swim": 1.99, "twolf": 1.35,
    "vortex": 2.40, "vpr": 1.39, "wupwise": 3.47,
}

#: Fraction of cycles in violation the paper reports (x 1e-6 in Table 2).
PAPER_VIOLATION_FRACTION = {
    "applu": 0.173e-6, "art": 3.26e-6, "bzip": 173e-6, "crafty": 4.52e-6,
    "facerec": 0.047e-6, "gcc": 0.047e-6, "lucas": 5597e-6, "mcf": 0.032e-6,
    "mgrid": 2.61e-6, "parser": 64.2e-6, "swim": 2730e-6,
    "wupwise": 0.097e-6,
}

#: The violating / non-violating split of Table 2.
VIOLATING_NAMES = (
    "applu", "art", "bzip", "crafty", "facerec", "gcc",
    "lucas", "mcf", "mgrid", "parser", "swim", "wupwise",
)
NON_VIOLATING_NAMES = (
    "ammp", "apsi", "eon", "equake", "fma3d", "galgel", "gap",
    "gzip", "mesa", "perlbmk", "sixtrack", "twolf", "vortex", "vpr",
)


def _profiles() -> List[WorkloadProfile]:
    p = WorkloadProfile
    return [
        # ---------------- violating benchmarks ----------------
        # Episode shape: ~50-instr serial chain (or memory miss) followed by
        # a width-limited hot phase; emergent period ~95-110 cycles.
        p("applu", "FP stencil solver; rare band-period episodes",
          frac_fp=0.6, frac_load=0.28, frac_store=0.10, frac_branch=0.06,
          mean_dep_distance=6.5, l1_miss_rate=0.02,
          osc_kind="serial", osc_period_instrs=420, osc_low_instrs=50,
          osc_jitter_instrs=3, osc_boost_ilp=True, osc_boost_dep=16,
          osc_episode_periods=5, osc_gap_instrs=80000, seed=11),
        p("art", "neural-net image recognition; cache-hungry, rare episodes",
          frac_fp=0.5, frac_load=0.30, frac_store=0.08, frac_branch=0.10,
          mean_dep_distance=4.0, l1_miss_rate=0.07, l2_miss_rate=0.15,
          osc_kind="serial", osc_period_instrs=410, osc_low_instrs=48,
          osc_jitter_instrs=3, osc_boost_ilp=True, osc_boost_dep=18,
          osc_episode_periods=5, osc_gap_instrs=35000, seed=12),
        p("bzip", "compression; frequent band-period episodes",
          frac_load=0.26, frac_store=0.12, frac_branch=0.13,
          mean_dep_distance=6.0, dep2_probability=0.5, l1_miss_rate=0.02,
          osc_kind="serial", osc_period_instrs=420, osc_low_instrs=50,
          osc_jitter_instrs=3, osc_boost_ilp=True, osc_boost_dep=20,
          osc_episode_periods=7, osc_gap_instrs=15000, seed=13),
        p("crafty", "chess; branchy with rare band-period episodes",
          frac_load=0.28, frac_store=0.08, frac_branch=0.15,
          mean_dep_distance=7.0, dep2_probability=0.5, branch_mispredict_rate=0.04,
          osc_kind="serial", osc_period_instrs=430, osc_low_instrs=48,
          osc_jitter_instrs=3, osc_boost_ilp=True, osc_boost_dep=18,
          osc_episode_periods=5, osc_gap_instrs=40000, seed=14),
        p("facerec", "FP face recognition; rarest resonance episodes",
          frac_fp=0.55, frac_load=0.26, frac_store=0.08, frac_branch=0.07,
          mean_dep_distance=8.0, dep2_probability=0.5, l1_miss_rate=0.015,
          osc_kind="serial", osc_period_instrs=420, osc_low_instrs=48,
          osc_jitter_instrs=4, osc_boost_ilp=True, osc_boost_dep=16,
          osc_episode_periods=5, osc_gap_instrs=70000, seed=15),
        p("gcc", "compiler; irregular with rare band-period episodes",
          frac_load=0.27, frac_store=0.11, frac_branch=0.16,
          mean_dep_distance=6.5, dep2_probability=0.5, branch_mispredict_rate=0.05,
          l1_miss_rate=0.025,
          osc_kind="serial", osc_period_instrs=420, osc_low_instrs=48,
          osc_jitter_instrs=4, osc_boost_ilp=True, osc_boost_dep=16,
          osc_episode_periods=5, osc_gap_instrs=68000, seed=16),
        p("lucas", "FP Lucas-Lehmer; memory-bound, heavy resonance",
          frac_fp=0.65, frac_load=0.30, frac_store=0.10, frac_branch=0.03,
          mean_dep_distance=3.5, l1_miss_rate=0.06, l2_miss_rate=0.45,
          osc_kind="mem", osc_period_instrs=150, osc_low_instrs=20,
          osc_jitter_instrs=2, osc_boost_ilp=True,
          osc_episode_periods=8, osc_gap_instrs=5500, seed=17),
        p("mcf", "pointer chasing; memory-bound, very rare episodes",
          frac_load=0.35, frac_store=0.09, frac_branch=0.12,
          mean_dep_distance=3.0, l1_miss_rate=0.20, l2_miss_rate=0.50,
          osc_kind="serial", osc_period_instrs=400, osc_low_instrs=48,
          osc_jitter_instrs=3, osc_boost_ilp=True, osc_boost_dep=16,
          osc_episode_periods=5, osc_gap_instrs=9000, seed=18),
        p("mgrid", "FP multigrid; wide loops, occasional episodes",
          frac_fp=0.65, frac_load=0.30, frac_store=0.08, frac_branch=0.04,
          mean_dep_distance=9.0, dep2_probability=0.55, l1_miss_rate=0.015,
          osc_kind="serial", osc_period_instrs=430, osc_low_instrs=48,
          osc_jitter_instrs=3, osc_boost_ilp=True, osc_boost_dep=16,
          osc_episode_periods=5, osc_gap_instrs=36000, seed=119),
        p("parser", "parsing; moderate band-period episodes (Figure 4)",
          frac_load=0.28, frac_store=0.10, frac_branch=0.14,
          mean_dep_distance=4.5, dep2_probability=0.5, branch_mispredict_rate=0.04,
          l1_miss_rate=0.05,
          osc_kind="serial", osc_period_instrs=410, osc_low_instrs=50,
          osc_jitter_instrs=3, osc_boost_ilp=True, osc_boost_dep=16,
          osc_episode_periods=6, osc_gap_instrs=20000, seed=20),
        p("swim", "FP shallow-water; metronomic, heavy resonance",
          frac_fp=0.6, frac_load=0.32, frac_store=0.12, frac_branch=0.03,
          mean_dep_distance=5.0, l1_miss_rate=0.03,
          osc_kind="serial", osc_period_instrs=420, osc_low_instrs=52,
          osc_jitter_instrs=2, osc_boost_ilp=True, osc_boost_dep=20,
          osc_episode_periods=10, osc_gap_instrs=6000, seed=21),
        p("wupwise", "FP quantum chromodynamics; fast, rare episodes",
          frac_fp=0.6, frac_load=0.26, frac_store=0.08, frac_branch=0.04,
          mean_dep_distance=10.0, dep2_probability=0.55, l1_miss_rate=0.012,
          osc_kind="serial", osc_period_instrs=430, osc_low_instrs=46,
          osc_jitter_instrs=4, osc_boost_ilp=True, osc_boost_dep=16,
          osc_episode_periods=5, osc_gap_instrs=60000, seed=22),
        # ---------------- non-violating benchmarks ----------------
        p("ammp", "molecular dynamics; memory-bound, off-band stalls",
          frac_fp=0.5, frac_load=0.32, frac_store=0.10, frac_branch=0.08,
          mean_dep_distance=2.5, l1_miss_rate=0.18, l2_miss_rate=0.45,
          osc_kind="mem", osc_period_instrs=100, osc_low_instrs=30,
          osc_jitter_instrs=30, seed=31),
        p("apsi", "FP meteorology; slow phases above the band",
          frac_fp=0.55, frac_load=0.28, frac_store=0.10, frac_branch=0.06,
          mean_dep_distance=6.5, l1_miss_rate=0.025,
          osc_kind="serial", osc_period_instrs=430, osc_low_instrs=70,
          osc_jitter_instrs=40, seed=32),
        p("eon", "C++ ray tracing; steady medium ILP",
          frac_load=0.26, frac_store=0.10, frac_branch=0.11,
          mean_dep_distance=7.0, dep2_probability=0.5, branch_mispredict_rate=0.02,
          osc_kind="serial", osc_period_instrs=120, osc_low_instrs=12,
          osc_jitter_instrs=5, seed=33),
        p("equake", "FP earthquake simulation; smooth and wide",
          frac_fp=0.55, frac_load=0.26, frac_store=0.08, frac_branch=0.04,
          mean_dep_distance=12.0, dep2_probability=0.55, l1_miss_rate=0.01,
          osc_kind="serial", osc_period_instrs=110, osc_low_instrs=10,
          osc_jitter_instrs=8, seed=34),
        p("fma3d", "FP crash simulation; the widest, smoothest workload",
          frac_fp=0.6, frac_load=0.20, frac_store=0.08, frac_branch=0.03,
          mean_dep_distance=13.0, dep2_probability=0.65, l1_miss_rate=0.008,
          osc_kind="serial", osc_period_instrs=112, osc_low_instrs=10,
          osc_jitter_instrs=8, seed=35),
        p("galgel", "FP fluid dynamics; smooth and wide",
          frac_fp=0.6, frac_load=0.26, frac_store=0.08, frac_branch=0.04,
          mean_dep_distance=10.0, dep2_probability=0.55, l1_miss_rate=0.01,
          osc_kind="serial", osc_period_instrs=108, osc_low_instrs=10,
          osc_jitter_instrs=8, seed=36),
        p("gap", "group theory; steady integer ILP",
          frac_load=0.27, frac_store=0.10, frac_branch=0.10,
          mean_dep_distance=7.5, dep2_probability=0.5, l1_miss_rate=0.015,
          osc_kind="serial", osc_period_instrs=140, osc_low_instrs=12,
          osc_jitter_instrs=5, seed=37),
        p("gzip", "compression; periodic but well below the band",
          frac_load=0.25, frac_store=0.11, frac_branch=0.13,
          mean_dep_distance=6.0, dep2_probability=0.5, l1_miss_rate=0.015,
          osc_kind="serial", osc_period_instrs=150, osc_low_instrs=20,
          osc_jitter_instrs=6, seed=38),
        p("mesa", "3-D graphics; smooth and wide",
          frac_fp=0.4, frac_load=0.26, frac_store=0.09, frac_branch=0.07,
          mean_dep_distance=9.0, dep2_probability=0.5, l1_miss_rate=0.01,
          osc_kind="serial", osc_period_instrs=160, osc_low_instrs=12,
          osc_jitter_instrs=5, seed=39),
        p("perlbmk", "perl interpreter; branchy and irregular",
          frac_load=0.28, frac_store=0.12, frac_branch=0.16,
          mean_dep_distance=4.0, branch_mispredict_rate=0.08,
          l1_miss_rate=0.03, seed=40),
        p("sixtrack", "FP accelerator physics; smooth and wide",
          frac_fp=0.6, frac_load=0.25, frac_store=0.08, frac_branch=0.04,
          mean_dep_distance=9.0, dep2_probability=0.55, l1_miss_rate=0.01,
          osc_kind="serial", osc_period_instrs=160, osc_low_instrs=12,
          osc_jitter_instrs=5, seed=41),
        p("twolf", "place and route; irregular memory stalls",
          frac_load=0.28, frac_store=0.09, frac_branch=0.14,
          mean_dep_distance=5.5, dep2_probability=0.5, branch_mispredict_rate=0.05,
          l1_miss_rate=0.045, l2_miss_rate=0.25,
          osc_kind="mem", osc_period_instrs=320, osc_low_instrs=24,
          osc_jitter_instrs=150, seed=42),
        p("vortex", "object database; steady integer ILP",
          frac_load=0.28, frac_store=0.12, frac_branch=0.10,
          mean_dep_distance=6.5, dep2_probability=0.5, l1_miss_rate=0.02,
          osc_kind="serial", osc_period_instrs=120, osc_low_instrs=12,
          osc_jitter_instrs=5, seed=43),
        p("vpr", "FPGA place and route; branchy and irregular",
          frac_load=0.28, frac_store=0.09, frac_branch=0.14,
          mean_dep_distance=4.0, branch_mispredict_rate=0.06,
          l1_miss_rate=0.04, seed=44),
    ]


SPEC2K: Dict[str, WorkloadProfile] = {
    profile.name: profile for profile in _profiles()
}

if set(SPEC2K) != set(PAPER_IPC):
    raise ConfigurationError("workload set does not match Table 2")


def profile_by_name(name: str) -> WorkloadProfile:
    """Look up one of the 26 SPEC2K profiles by benchmark name."""
    try:
        return SPEC2K[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; choose from {sorted(SPEC2K)}"
        ) from None
