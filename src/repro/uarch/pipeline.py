"""Cycle-level out-of-order pipeline (Table 1 configuration).

An 8-wide out-of-order core executing a synthetic trace: in-order dispatch
into a 128-entry reorder buffer (and load/store queue), dataflow-driven
issue limited by issue width, functional-unit pools and cache ports,
full-latency execution, and in-order commit.  Mispredicted branches stall
the frontend until they resolve plus a redirect penalty.

The scheduler is event-driven rather than scan-based: consumers are woken by
producer-completion events, and ready instructions sit in heaps, so per-cycle
work is proportional to actual activity instead of window size (the paper's
SimpleScalar-derived simulator scans; the results are equivalent, the speed
is what makes a pure-Python reproduction feasible).

Control hooks (:class:`ControlDirectives`) expose exactly the levers the
paper's techniques use: issue-width and cache-port clamps plus issue stalling
with a phantom current floor (resonance tuning), fetch/issue stalling and
phantom firing (the [10] baseline), and per-cycle issued-current-estimate
bounds (pipeline damping).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.config import ProcessorConfig
from repro.errors import SimulationError
from repro.uarch.branch import BranchUnit
from repro.uarch.cache import CacheHierarchy
from repro.uarch.isa import EXECUTION_LATENCY, OpClass
from repro.uarch.power_model import PowerModel
from repro.uarch.resources import CachePorts, FunctionalUnits
from repro.uarch.trace import MAX_DEP_DISTANCE, SyntheticTrace

__all__ = ["ControlDirectives", "CycleStats", "Pipeline", "NO_CONTROL"]

#: Sliding dependency window; must exceed ROB size plus the maximum
#: producer-consumer distance so producer slots are never reused while a
#: consumer can still look them up.
_WINDOW = 512
_UNFINISHED = 1 << 60
#: Bound on how deep issue selection scans past resource-blocked entries.
_SCAN_FACTOR = 4

_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_BRANCH = int(OpClass.BRANCH)
_EXEC_LATENCY = {int(op): lat for op, lat in EXECUTION_LATENCY.items()}


@dataclass(frozen=True)
class ControlDirectives:
    """Per-cycle levers a noise controller may pull (all default inactive)."""

    issue_width_limit: Optional[int] = None
    cache_ports_limit: Optional[int] = None
    stall_issue: bool = False
    stall_fetch: bool = False
    current_floor_amps: float = 0.0
    issue_estimate_bounds: Optional[Tuple[float, float]] = None


NO_CONTROL = ControlDirectives()


@dataclass
class CycleStats:
    """What happened in one cycle (consumed by controllers and metrics)."""

    __slots__ = (
        "cycle",
        "current_amps",
        "phantom_amps",
        "dispatched",
        "issued",
        "committed",
        "issued_estimate_amps",
        "rob_occupancy",
    )

    cycle: int
    current_amps: float
    phantom_amps: float
    dispatched: int
    issued: int
    committed: int
    issued_estimate_amps: float
    rob_occupancy: int


class Pipeline:
    """Executes one synthetic trace cycle by cycle."""

    def __init__(
        self,
        trace: SyntheticTrace,
        config: ProcessorConfig,
        power: Optional[PowerModel] = None,
        cache: Optional[CacheHierarchy] = None,
    ):
        if _WINDOW < config.rob_entries + MAX_DEP_DISTANCE:
            raise SimulationError("dependency window smaller than ROB + max distance")
        self.trace = trace
        self.config = config
        self.power = power or PowerModel(config)
        self.cache = cache or CacheHierarchy(config)
        self.branch_unit = BranchUnit(config)
        self._fus = FunctionalUnits(config)
        self._ports = CachePorts(config)

        # Trace columns as plain lists: scalar indexing is much faster than
        # numpy element access in the per-cycle loop.
        self._op = trace.op_class.tolist()
        self._dep1 = trace.dep1.tolist()
        self._dep2 = trace.dep2.tolist()
        self._mem_level = trace.mem_level.tolist()
        self._mispredict = trace.mispredict.tolist()
        self._icache_miss = trace.icache_miss.tolist()
        self._n_trace = len(trace)

        # Sliding window state, indexed by sequence number modulo _WINDOW.
        self._finish = [0] * _WINDOW
        self._npend = [0] * _WINDOW
        self._base_rc = [0] * _WINDOW
        self._consumers = [[] for _ in range(_WINDOW)]

        self._pending_ready = []  # (ready_cycle, seq)
        self._ready_now = []      # seq
        self._completions = []    # (finish_cycle, seq)

        self.cycle = 0
        self.seq_dispatch = 0
        self.seq_commit = 0
        self.rob_count = 0
        self.lsq_count = 0
        self._icache_stall_until = 0
        self._outstanding_misses = 0
        self.icache_stalls = 0
        self.mshr_stall_cycles = 0
        self.total_committed = 0
        self.total_issued = 0
        self.total_dispatched = 0
        self._estimates = {
            op: self.power.apriori_issue_estimate(op) for op in range(7)
        }

    # ------------------------------------------------------------------
    def step(self, directives: ControlDirectives = NO_CONTROL) -> CycleStats:
        """Advance one cycle under the given control directives."""
        cycle = self.cycle
        self._process_completions(cycle)
        dispatched = 0 if directives.stall_fetch else self._dispatch(cycle)
        issued, issued_estimate = self._issue(cycle, directives)
        committed = self._commit(cycle)

        power = self.power
        if dispatched:
            power.add_dispatch(dispatched)
        if committed:
            power.add_commit(committed)
        power.add_occupancy(self.rob_count)

        floor = directives.current_floor_amps
        if floor > 0.0:
            activity = power.preview_current()
            phantom = max(0.0, floor - activity)
        else:
            phantom = 0.0
        if directives.issue_estimate_bounds is not None:
            low = directives.issue_estimate_bounds[0]
            if issued_estimate < low:
                phantom += low - issued_estimate
                issued_estimate = low
        current = power.end_cycle(phantom)

        self.total_committed += committed
        self.total_issued += issued
        self.total_dispatched += dispatched
        self.cycle = cycle + 1
        return CycleStats(
            cycle=cycle,
            current_amps=current,
            phantom_amps=phantom,
            dispatched=dispatched,
            issued=issued,
            committed=committed,
            issued_estimate_amps=issued_estimate,
            rob_occupancy=self.rob_count,
        )

    # ------------------------------------------------------------------
    def _process_completions(self, cycle: int) -> None:
        completions = self._completions
        consumers = self._consumers
        npend = self._npend
        base_rc = self._base_rc
        pending_ready = self._pending_ready
        while completions and completions[0][0] <= cycle:
            finish_cycle, seq = heapq.heappop(completions)
            w = seq % _WINDOW
            index = seq % self._n_trace
            if self._op[index] == _BRANCH and self._mispredict[index]:
                self.branch_unit.on_resolve(seq, finish_cycle)
            elif self._op[index] == _LOAD and self._mem_level[index] >= 1:
                self._outstanding_misses -= 1
            waiters = consumers[w]
            if waiters:
                for consumer in waiters:
                    cw = consumer % _WINDOW
                    if base_rc[cw] < finish_cycle:
                        base_rc[cw] = finish_cycle
                    npend[cw] -= 1
                    if npend[cw] == 0:
                        heapq.heappush(pending_ready, (base_rc[cw], consumer))
                consumers[w] = []

    # ------------------------------------------------------------------
    def _dispatch(self, cycle: int) -> int:
        config = self.config
        branch_unit = self.branch_unit
        finish = self._finish
        npend = self._npend
        base_rc = self._base_rc
        consumers = self._consumers
        op_list = self._op
        n_trace = self._n_trace
        dispatched = 0
        seq = self.seq_dispatch
        if cycle < self._icache_stall_until:
            return 0

        while (
            dispatched < config.fetch_width
            and self.rob_count < config.rob_entries
            and branch_unit.fetch_allowed(cycle)
        ):
            index = seq % n_trace
            op = op_list[index]
            if self._icache_miss[index] and dispatched > 0:
                break  # the missing block starts next cycle's stall
            if self._icache_miss[index]:
                self._icache_stall_until = cycle + config.icache_miss_penalty
                self.icache_stalls += 1
            is_mem = op == _LOAD or op == _STORE
            if is_mem and self.lsq_count >= config.lsq_entries:
                break
            w = seq % _WINDOW
            finish[w] = _UNFINISHED
            ready_cycle = cycle + 1
            pending = 0
            for distance in (self._dep1[index], self._dep2[index]):
                if distance:
                    producer = seq - distance
                    if producer >= 0:
                        pw = producer % _WINDOW
                        producer_finish = finish[pw]
                        if producer_finish == _UNFINISHED:
                            consumers[pw].append(seq)
                            pending += 1
                        elif producer_finish > ready_cycle:
                            ready_cycle = producer_finish
            if pending:
                npend[w] = pending
                base_rc[w] = ready_cycle
            else:
                heapq.heappush(self._pending_ready, (ready_cycle, seq))
            if is_mem:
                self.lsq_count += 1
            if op == _BRANCH and self._mispredict[index]:
                branch_unit.on_dispatch_mispredict(seq)
            self.rob_count += 1
            dispatched += 1
            seq += 1

        self.seq_dispatch = seq
        return dispatched

    # ------------------------------------------------------------------
    def _issue(self, cycle: int, directives: ControlDirectives):
        pending_ready = self._pending_ready
        ready_now = self._ready_now
        while pending_ready and pending_ready[0][0] <= cycle:
            _, seq = heapq.heappop(pending_ready)
            heapq.heappush(ready_now, seq)

        if directives.stall_issue:
            return 0, 0.0
        config = self.config
        width = config.issue_width
        if directives.issue_width_limit is not None:
            width = max(0, min(width, directives.issue_width_limit))
        if width == 0 or not ready_now:
            return 0, 0.0

        bounds = directives.issue_estimate_bounds
        estimate_cap = bounds[1] if bounds is not None else None

        fus = self._fus
        ports = self._ports
        fus.new_cycle()
        ports.new_cycle(directives.cache_ports_limit)

        op_list = self._op
        mem_levels = self._mem_level
        finish = self._finish
        estimates = self._estimates
        power = self.power
        completions = self._completions
        n_trace = self._n_trace

        issued = 0
        issued_estimate = 0.0
        blocked = []
        scans = 0
        max_scans = width * _SCAN_FACTOR

        while ready_now and issued < width and scans < max_scans:
            seq = heapq.heappop(ready_now)
            scans += 1
            index = seq % n_trace
            op = op_list[index]
            estimate = estimates[op]
            if estimate_cap is not None and issued_estimate + estimate > estimate_cap:
                blocked.append(seq)
                break  # damping bound reached: nothing else may issue
            if op == _LOAD or op == _STORE:
                is_miss = op == _LOAD and mem_levels[index] >= 1
                if is_miss and self._outstanding_misses >= self.config.mshr_entries:
                    blocked.append(seq)
                    self.mshr_stall_cycles += 1
                    continue
                if not ports.try_claim():
                    blocked.append(seq)
                    continue
                access = self.cache.access(mem_levels[index], op == _STORE)
                latency = access.latency
                power.add_cache_access(access)
                if is_miss:
                    self._outstanding_misses += 1
            else:
                if not fus.try_claim(op):
                    blocked.append(seq)
                    continue
                latency = _EXEC_LATENCY[op]
            finish_cycle = cycle + latency
            finish[seq % _WINDOW] = finish_cycle
            heapq.heappush(completions, (finish_cycle, seq))
            power.add_issue(op, latency)
            issued += 1
            issued_estimate += estimate

        for seq in blocked:
            heapq.heappush(ready_now, seq)
        return issued, issued_estimate

    # ------------------------------------------------------------------
    def _commit(self, cycle: int) -> int:
        config = self.config
        finish = self._finish
        op_list = self._op
        n_trace = self._n_trace
        committed = 0
        seq = self.seq_commit
        while committed < config.commit_width and seq < self.seq_dispatch:
            w = seq % _WINDOW
            if finish[w] > cycle:
                break
            op = op_list[seq % n_trace]
            if op == _LOAD or op == _STORE:
                self.lsq_count -= 1
            self.rob_count -= 1
            committed += 1
            seq += 1
        self.seq_commit = seq
        return committed

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Committed instructions per cycle so far."""
        if self.cycle == 0:
            return 0.0
        return self.total_committed / self.cycle

    def run(self, n_cycles: int, directives: ControlDirectives = NO_CONTROL):
        """Run ``n_cycles`` under fixed directives; returns final stats."""
        stats = None
        for _ in range(n_cycles):
            stats = self.step(directives)
        return stats
