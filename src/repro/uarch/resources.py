"""Per-cycle structural resources: functional-unit pools and cache ports.

Functional units are fully pipelined, so a unit is occupied only in the
cycle an operation issues to it; the pools therefore reset every cycle.
Resonance tuning's first-level response shrinks the apparent issue width and
port count without touching the pools themselves.
"""

from __future__ import annotations

from repro.config import ProcessorConfig
from repro.errors import SimulationError
from repro.uarch.isa import OpClass

__all__ = ["FunctionalUnits", "CachePorts"]


class FunctionalUnits:
    """Counts per-cycle issue slots per functional-unit pool."""

    def __init__(self, config: ProcessorConfig):
        self._capacity = {
            "int_alu": config.int_alus,
            "int_mul": config.int_muls,
            "fp_alu": config.fp_alus,
            "fp_mul": config.fp_muls,
        }
        self._used = dict.fromkeys(self._capacity, 0)

    def new_cycle(self) -> None:
        for key in self._used:
            self._used[key] = 0

    def try_claim(self, op_class: int) -> bool:
        """Claim a unit for this cycle; False if the pool is exhausted."""
        pool = _POOL_FOR_OP.get(op_class)
        if pool is None:
            return True  # memory ops are limited by cache ports instead
        if self._used[pool] >= self._capacity[pool]:
            return False
        self._used[pool] += 1
        return True

    def capacity(self, pool: str) -> int:
        if pool not in self._capacity:
            raise SimulationError(f"unknown functional-unit pool {pool!r}")
        return self._capacity[pool]


class CachePorts:
    """Per-cycle L1 data-cache port arbitration (loads and stores share)."""

    def __init__(self, config: ProcessorConfig):
        self.capacity = config.cache_ports
        self._limit = config.cache_ports
        self._used = 0

    def new_cycle(self, limit: "int | None" = None) -> None:
        """Start a cycle, optionally clamped (first-level response 2 -> 1)."""
        self._used = 0
        self._limit = self.capacity if limit is None else max(0, min(limit, self.capacity))

    def try_claim(self) -> bool:
        if self._used >= self._limit:
            return False
        self._used += 1
        return True

    @property
    def used(self) -> int:
        return self._used


_POOL_FOR_OP = {
    int(OpClass.INT_ALU): "int_alu",
    int(OpClass.INT_MUL): "int_mul",
    int(OpClass.FP_ALU): "fp_alu",
    int(OpClass.FP_MUL): "fp_mul",
    int(OpClass.BRANCH): "int_alu",
}
