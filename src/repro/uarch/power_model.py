"""Wattch-like activity-based power model (Section 4.1).

Current is power divided by supply voltage, so the model works directly in
amps.  Each microarchitectural event (dispatch, issue to a functional unit,
cache access, commit) contributes a per-access current; multi-cycle
operations spread their current over the cycles they occupy, as the paper's
Wattch extension spreads per-event current over pipeline stages.  Aggressive
clock gating is modelled by a low idle base current: a fully idle processor
draws ``min_current_amps`` (ungateable global clock plus leakage, Table 1's
35 A) and a saturated one reaches ``max_current_amps`` (105 A).

The calibration works backwards from Table 1: relative per-event weights are
scaled so that sustained full-width execution with the most power-hungry
feasible instruction mix draws exactly the configured peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import ProcessorConfig
from repro.errors import ConfigurationError
from repro.uarch.cache import CacheAccess
from repro.uarch.isa import OpClass

__all__ = ["EnergyWeights", "PowerModel"]

#: Ring-buffer horizon for spread current; must exceed the longest spread
#: (an L1+L2+memory access, 94 cycles for the Table 1 hierarchy).
_HORIZON = 256


def _default_fu_weights() -> dict:
    return {
        int(OpClass.INT_ALU): 0.9,
        int(OpClass.INT_MUL): 1.8,
        int(OpClass.FP_ALU): 1.6,
        int(OpClass.FP_MUL): 2.4,
        int(OpClass.BRANCH): 0.9,
    }


@dataclass(frozen=True)
class EnergyWeights:
    """Relative per-event current contributions (scaled at calibration).

    The absolute values are arbitrary units; only their ratios matter, since
    :class:`PowerModel` rescales them to hit the configured current range.
    """

    dispatch: float = 1.0          # fetch + decode + rename, per instruction
    issue: float = 0.8             # wakeup/select + register read, per issue
    commit: float = 0.5            # ROB retire + register write, per commit
    l1_access: float = 2.0         # per cache access, spread over L1 latency
    l2_access: float = 8.0         # per L2 access, spread over L2 latency
    memory_access: float = 16.0    # per memory access, spread over its latency
    rob_occupancy: float = 0.01    # per occupied ROB entry (gated remnants)
    fu: dict = field(default_factory=_default_fu_weights)

    def fu_weight(self, op_class: int) -> float:
        return self.fu.get(op_class, 0.0)


class PowerModel:
    """Accumulates per-cycle activity into a per-cycle current in amps."""

    def __init__(self, config: ProcessorConfig, weights: "EnergyWeights | None" = None):
        self.config = config
        self.weights = weights or EnergyWeights()
        self._pending = np.zeros(_HORIZON)
        self._slot = 0
        self._immediate = 0.0
        self._base = config.min_current_amps
        self._scale = self._calibrate_scale()
        self.total_energy_joules = 0.0
        self.phantom_energy_joules = 0.0
        self._vdd = 1.0  # set by the simulation when it knows the supply
        self._cycle_seconds = 1e-10

    # ------------------------------------------------------------------
    # calibration
    # ------------------------------------------------------------------
    def _peak_activity_units(self) -> float:
        """Activity units of sustained full-width, max-power execution.

        In steady state, spread current equals its full per-access value per
        cycle at a sustained rate, so the peak mix is: every issue slot
        filled with the most power-hungry feasible operations (cache ports
        saturated with loads, then FP multiplies, FP adds, integer
        multiplies, integer ALU ops up to their pool sizes), with dispatch
        and commit at full width and the ROB full.
        """
        config = self.config
        weights = self.weights
        slots = config.issue_width
        units = slots * weights.issue
        units += config.fetch_width * weights.dispatch
        units += config.commit_width * weights.commit
        units += config.rob_entries * weights.rob_occupancy

        pool = [
            (weights.l1_access, config.cache_ports),
            (weights.fu_weight(int(OpClass.FP_MUL)), config.fp_muls),
            (weights.fu_weight(int(OpClass.FP_ALU)), config.fp_alus),
            (weights.fu_weight(int(OpClass.INT_MUL)), config.int_muls),
            (weights.fu_weight(int(OpClass.INT_ALU)), config.int_alus),
        ]
        pool.sort(reverse=True)
        remaining = slots
        for weight, capacity in pool:
            take = min(remaining, capacity)
            units += take * weight
            remaining -= take
            if remaining == 0:
                break
        return units

    def _calibrate_scale(self) -> float:
        span = self.config.max_current_amps - self.config.min_current_amps
        peak = self._peak_activity_units()
        if peak <= 0:
            raise ConfigurationError("power weights produce no activity current")
        return span / peak

    @property
    def amps_per_unit(self) -> float:
        return self._scale

    def attach_supply(self, vdd_volts: float, cycle_seconds: float) -> None:
        """Let the model convert amps to joules for energy accounting."""
        self._vdd = vdd_volts
        self._cycle_seconds = cycle_seconds

    # ------------------------------------------------------------------
    # per-cycle accumulation
    # ------------------------------------------------------------------
    def add_dispatch(self, count: int) -> None:
        self._immediate += count * self.weights.dispatch

    def add_issue(self, op_class: int, latency: int) -> None:
        """Issue energy lands now; FU energy spreads over the latency."""
        self._immediate += self.weights.issue
        fu = self.weights.fu_weight(op_class)
        if fu:
            self._spread(fu, max(1, min(latency, _HORIZON)))

    def add_cache_access(self, access: CacheAccess) -> None:
        config = self.config
        self._spread(self.weights.l1_access, config.l1_hit_cycles)
        if access.touches_l2:
            self._spread(self.weights.l2_access, config.l2_hit_cycles)
        if access.touches_memory:
            self._spread(self.weights.memory_access, config.memory_cycles)

    def add_commit(self, count: int) -> None:
        self._immediate += count * self.weights.commit

    def add_occupancy(self, rob_count: int) -> None:
        self._immediate += rob_count * self.weights.rob_occupancy

    def _spread(self, units: float, duration: int) -> None:
        per_cycle = units / duration
        slot = self._slot
        for offset in range(duration):
            self._pending[(slot + offset) % _HORIZON] += per_cycle

    def preview_current(self) -> float:
        """Current the open cycle would draw if closed now, without phantoms.

        Used to size phantom padding: the second-level response (and the
        [10] baseline's phantom firing) tops activity current up to a floor.
        """
        return self._base + self._scale * (self._immediate + self._pending[self._slot])

    def end_cycle(self, phantom_amps: float = 0.0) -> float:
        """Close the cycle and return its total current in amps.

        ``phantom_amps`` is extra current from phantom operations (second
        level response or the [10] baseline); it is accounted separately in
        :attr:`phantom_energy_joules`.
        """
        slot = self._slot
        activity = self._immediate + self._pending[slot]
        self._pending[slot] = 0.0
        self._immediate = 0.0
        self._slot = (slot + 1) % _HORIZON
        current = self._base + self._scale * activity + phantom_amps
        self.total_energy_joules += current * self._vdd * self._cycle_seconds
        self.phantom_energy_joules += phantom_amps * self._vdd * self._cycle_seconds
        return current

    # ------------------------------------------------------------------
    # a-priori estimates for the pipeline-damping baseline (ref [14])
    # ------------------------------------------------------------------
    def apriori_issue_estimate(self, op_class: int) -> float:
        """Per-issue current estimate in 0.5 A units, as damping assumes.

        Ref [14] works from a-priori per-instruction-class estimates where
        each estimate unit is worth 0.5 A; we quantize the true per-issue
        current contribution accordingly.
        """
        units = self.weights.issue
        if op_class in (int(OpClass.LOAD), int(OpClass.STORE)):
            units += self.weights.l1_access
        else:
            units += self.weights.fu_weight(op_class)
        amps = units * self._scale
        return max(0.5, round(amps * 2.0) / 2.0)

    @property
    def idle_current_amps(self) -> float:
        return self._base
