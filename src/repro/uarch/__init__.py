"""Microarchitectural substrate: traces, out-of-order pipeline, power model.

Public surface:

* :class:`~repro.uarch.trace.WorkloadProfile` / :func:`~repro.uarch.trace.generate_trace`
  -- synthetic SPEC2K-like workloads.
* :data:`~repro.uarch.workloads.SPEC2K` -- the 26 tuned benchmark profiles.
* :class:`~repro.uarch.processor.Processor` -- the steppable processor facade.
* :class:`~repro.uarch.pipeline.ControlDirectives` -- the control levers the
  noise-control techniques pull each cycle.
"""

from repro.uarch.branch import BranchUnit
from repro.uarch.branch_predictor import (
    GSharePredictor,
    SyntheticBranchSpace,
    simulate_mispredicts,
)
from repro.uarch.cache import CacheAccess, CacheHierarchy
from repro.uarch.diagnostics import (
    WorkloadCharacter,
    characterize,
    dominant_period_cycles,
)
from repro.uarch.isa import EXECUTION_LATENCY, FU_FOR_OP, MemLevel, OpClass
from repro.uarch.pipeline import ControlDirectives, CycleStats, NO_CONTROL, Pipeline
from repro.uarch.power_model import EnergyWeights, PowerModel
from repro.uarch.processor import Processor
from repro.uarch.resources import CachePorts, FunctionalUnits
from repro.uarch.serialization import load_trace, save_trace
from repro.uarch.trace import SyntheticTrace, WorkloadProfile, generate_trace
from repro.uarch.workloads import (
    SPEC2K,
    NON_VIOLATING_NAMES,
    PAPER_IPC,
    VIOLATING_NAMES,
    profile_by_name,
)

__all__ = [
    "BranchUnit",
    "GSharePredictor",
    "SyntheticBranchSpace",
    "simulate_mispredicts",
    "WorkloadCharacter",
    "characterize",
    "dominant_period_cycles",
    "CacheAccess",
    "CacheHierarchy",
    "EXECUTION_LATENCY",
    "FU_FOR_OP",
    "MemLevel",
    "OpClass",
    "ControlDirectives",
    "CycleStats",
    "NO_CONTROL",
    "Pipeline",
    "EnergyWeights",
    "PowerModel",
    "Processor",
    "CachePorts",
    "FunctionalUnits",
    "SyntheticTrace",
    "load_trace",
    "save_trace",
    "WorkloadProfile",
    "generate_trace",
    "SPEC2K",
    "PAPER_IPC",
    "NON_VIOLATING_NAMES",
    "VIOLATING_NAMES",
    "profile_by_name",
]
