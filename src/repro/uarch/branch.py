"""Branch-redirect model for the trace-driven frontend.

Synthetic traces mark which branches resolve as mispredicted; this unit
tracks the resulting frontend bubble.  When a mispredicted branch is
dispatched, fetch stops; when it resolves (finishes execution), fetch
restarts after the redirect penalty.  Wrong-path execution energy is not
modelled (the paper's clock-gating model likewise idles unused resources).
"""

from __future__ import annotations

from repro.config import ProcessorConfig

__all__ = ["BranchUnit"]


class BranchUnit:
    """Tracks at most one outstanding mispredicted branch."""

    def __init__(self, config: ProcessorConfig):
        self._penalty = config.branch_mispredict_penalty
        self._blocking_seq: "int | None" = None
        self._fetch_resume_cycle = 0
        self.mispredicts = 0

    def on_dispatch_mispredict(self, seq: int) -> None:
        """A mispredicted branch entered the window; fetch stops behind it."""
        self._blocking_seq = seq
        self.mispredicts += 1

    def on_resolve(self, seq: int, cycle: int) -> None:
        """A branch finished executing; lift the block if it was the blocker."""
        if seq == self._blocking_seq:
            self._blocking_seq = None
            self._fetch_resume_cycle = max(
                self._fetch_resume_cycle, cycle + self._penalty
            )

    def fetch_allowed(self, cycle: int) -> bool:
        """May the frontend dispatch new instructions this cycle?"""
        return self._blocking_seq is None and cycle >= self._fetch_resume_cycle

    @property
    def blocked(self) -> bool:
        return self._blocking_seq is not None
