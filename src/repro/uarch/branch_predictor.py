"""A gshare branch predictor for realistic misprediction streams.

The default trace generator draws mispredictions independently per branch,
which is adequate for the paper's experiments (mispredict bubbles are a
second-order current effect) but misses a real property: mispredictions
cluster.  Loop exits, correlated branches and aliasing in a real predictor
produce *bursts* of mispredictions, and bursts are broadband current noise.

Profiles opting in (``branch_model="gshare"``) get their branch outcomes
synthesized per static branch (biased Bernoulli or loop patterns) and run
through this predictor; the resulting mispredict flags replace the
independent draws.  The predictor is the classic gshare: a table of 2-bit
saturating counters indexed by PC xor global history.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["GSharePredictor", "SyntheticBranchSpace", "simulate_mispredicts"]


class GSharePredictor:
    """gshare: 2-bit counters indexed by (pc ^ global history)."""

    def __init__(self, table_bits: int = 12, history_bits: int = 10):
        if not 2 <= table_bits <= 24:
            raise ConfigurationError("table_bits must be in [2, 24]")
        if not 0 <= history_bits <= table_bits:
            raise ConfigurationError("history_bits must be in [0, table_bits]")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._counters = bytearray([2] * (1 << table_bits))  # weakly taken
        self._history = 0
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return (pc ^ (self._history << (self.table_bits - self.history_bits))) \
            & self._mask if self.history_bits else pc & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, train on the outcome, and return whether we mispredicted."""
        index = self._index(pc)
        predicted = self._counters[index] >= 2
        if taken and self._counters[index] < 3:
            self._counters[index] += 1
        elif not taken and self._counters[index] > 0:
            self._counters[index] -= 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        self.predictions += 1
        mispredicted = predicted != taken
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def mispredict_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions


class SyntheticBranchSpace:
    """A pool of static branches with per-branch outcome behaviour.

    Each static branch is either *biased* (taken with a fixed probability,
    the common if/else case) or a *loop* branch (taken ``trip_count - 1``
    times, then not taken -- the pattern that defeats simple predictors at
    every loop exit).
    """

    def __init__(
        self,
        n_static: int = 64,
        loop_fraction: float = 0.3,
        bias_concentration: float = 0.95,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_static < 1:
            raise ConfigurationError("n_static must be at least 1")
        if not 0.0 <= loop_fraction <= 1.0:
            raise ConfigurationError("loop_fraction must be in [0, 1]")
        if not 0.5 <= bias_concentration < 1.0:
            raise ConfigurationError("bias_concentration must be in [0.5, 1)")
        rng = rng or np.random.default_rng(0)
        self._rng = rng
        self._pcs = rng.integers(0, 1 << 20, size=n_static)
        self._is_loop = rng.random(n_static) < loop_fraction
        # Biased branches: strongly taken or strongly not-taken.
        direction = rng.random(n_static) < 0.5
        self._bias = np.where(
            direction, bias_concentration, 1.0 - bias_concentration
        )
        self._trip_counts = rng.integers(4, 40, size=n_static)
        self._loop_position = np.zeros(n_static, dtype=np.int64)
        # Program order: branches execute in stable regions (a loop body's
        # branches repeat cyclically), not at random -- this is what makes
        # global history informative for a real predictor.
        self._region_size = min(8, n_static)
        self._region_start = 0
        self._region_offset = 0

    def next_branch(self) -> "tuple[int, bool]":
        """Produce the next dynamic branch in program order."""
        n_static = len(self._pcs)
        # Occasionally move to a different code region (phase change).
        if self._rng.random() < 0.002:
            self._region_start = int(self._rng.integers(0, n_static))
            self._region_offset = 0
        index = (self._region_start + self._region_offset) % n_static
        self._region_offset = (self._region_offset + 1) % self._region_size
        if self._is_loop[index]:
            position = self._loop_position[index]
            taken = position < self._trip_counts[index] - 1
            self._loop_position[index] = (position + 1) % self._trip_counts[index]
        else:
            taken = bool(self._rng.random() < self._bias[index])
        return int(self._pcs[index]), bool(taken)


def simulate_mispredicts(
    n_branches: int,
    rng: Optional[np.random.Generator] = None,
    n_static: int = 64,
    loop_fraction: float = 0.3,
) -> np.ndarray:
    """Mispredict flags for ``n_branches`` dynamic branches via gshare."""
    rng = rng or np.random.default_rng(0)
    space = SyntheticBranchSpace(
        n_static=n_static, loop_fraction=loop_fraction, rng=rng
    )
    predictor = GSharePredictor()
    flags = np.zeros(n_branches, dtype=bool)
    for index in range(n_branches):
        pc, taken = space.next_branch()
        flags[index] = predictor.update(pc, taken)
    return flags
