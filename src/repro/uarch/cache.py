"""Cache-hierarchy timing model (Table 1 parameters).

The hierarchy is trace-annotated: each memory operation in a synthetic trace
carries the level it hits at (L1, L2 or memory), and this model converts the
level into a load-use latency and accounts the accesses for the power model.
Port arbitration (two L1 ports, shared by loads and stores, reducible to one
by the resonance-tuning first-level response) is enforced by the pipeline via
:class:`repro.uarch.resources.CachePorts`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessorConfig
from repro.errors import SimulationError
from repro.uarch.isa import MemLevel

__all__ = ["CacheAccess", "CacheHierarchy"]


@dataclass(frozen=True)
class CacheAccess:
    """Latency and hierarchy traffic of one memory operation."""

    latency: int
    touches_l2: bool
    touches_memory: bool


class CacheHierarchy:
    """Maps trace memory levels to latencies and traffic.

    Latencies accumulate down the hierarchy: an L2 hit pays the L1 lookup
    plus the L2 access; a memory access pays L1 + L2 + memory.
    """

    def __init__(self, config: ProcessorConfig):
        self.config = config
        self._latency = {
            int(MemLevel.L1): config.l1_hit_cycles,
            int(MemLevel.L2): config.l1_hit_cycles + config.l2_hit_cycles,
            int(MemLevel.MEMORY): (
                config.l1_hit_cycles + config.l2_hit_cycles + config.memory_cycles
            ),
        }
        self.l1_accesses = 0
        self.l2_accesses = 0
        self.memory_accesses = 0

    def access(self, mem_level: int, is_store: bool) -> CacheAccess:
        """Record one access and return its timing.

        Stores retire into a write buffer: they occupy a cache port but
        complete in a single cycle regardless of where the line lives (their
        miss traffic still shows up as L2/memory energy).
        """
        if mem_level not in self._latency:
            raise SimulationError(f"not a memory operation (level {mem_level})")
        self.l1_accesses += 1
        touches_l2 = mem_level >= int(MemLevel.L2)
        touches_memory = mem_level >= int(MemLevel.MEMORY)
        if touches_l2:
            self.l2_accesses += 1
        if touches_memory:
            self.memory_accesses += 1
        latency = 1 if is_store else self._latency[mem_level]
        return CacheAccess(
            latency=latency, touches_l2=touches_l2, touches_memory=touches_memory
        )

    def latency_for(self, mem_level: int) -> int:
        """Load-use latency for a given hierarchy level (no accounting)."""
        if mem_level not in self._latency:
            raise SimulationError(f"not a memory operation (level {mem_level})")
        return self._latency[mem_level]

    def reset_counters(self) -> None:
        self.l1_accesses = 0
        self.l2_accesses = 0
        self.memory_accesses = 0
