"""Processor facade: trace + pipeline + power model as one steppable object.

This is what the simulation loop and the noise controllers interact with.
Each :meth:`Processor.step` advances one cycle under a set of
:class:`~repro.uarch.pipeline.ControlDirectives` and returns the cycle's
:class:`~repro.uarch.pipeline.CycleStats`, most importantly the per-cycle
core current in amps that drives the power supply.
"""

from __future__ import annotations

from typing import Optional

from repro.config import PowerSupplyConfig, ProcessorConfig
from repro.uarch.cache import CacheHierarchy
from repro.uarch.pipeline import ControlDirectives, CycleStats, NO_CONTROL, Pipeline
from repro.uarch.power_model import EnergyWeights, PowerModel
from repro.uarch.trace import SyntheticTrace, WorkloadProfile, generate_trace

__all__ = ["Processor"]


class Processor:
    """A complete simulated processor executing one workload."""

    def __init__(
        self,
        trace: SyntheticTrace,
        config: Optional[ProcessorConfig] = None,
        weights: Optional[EnergyWeights] = None,
        supply_config: Optional[PowerSupplyConfig] = None,
    ):
        self.config = config or ProcessorConfig()
        self.power = PowerModel(self.config, weights)
        if supply_config is not None:
            self.power.attach_supply(
                supply_config.vdd_volts, supply_config.cycle_seconds
            )
        self.cache = CacheHierarchy(self.config)
        self.pipeline = Pipeline(trace, self.config, self.power, self.cache)
        self.trace = trace

    @classmethod
    def from_profile(
        cls,
        profile: WorkloadProfile,
        n_instructions: int = 200_000,
        config: Optional[ProcessorConfig] = None,
        supply_config: Optional[PowerSupplyConfig] = None,
        seed: Optional[int] = None,
    ) -> "Processor":
        """Build a processor running a freshly generated synthetic trace."""
        trace = generate_trace(profile, n_instructions, seed=seed)
        return cls(trace, config=config, supply_config=supply_config)

    def step(self, directives: ControlDirectives = NO_CONTROL) -> CycleStats:
        """Advance one cycle; returns the cycle statistics."""
        return self.pipeline.step(directives)

    @property
    def cycle(self) -> int:
        return self.pipeline.cycle

    @property
    def ipc(self) -> float:
        return self.pipeline.ipc

    @property
    def committed_instructions(self) -> int:
        return self.pipeline.total_committed

    @property
    def total_energy_joules(self) -> float:
        return self.power.total_energy_joules

    @property
    def phantom_energy_joules(self) -> float:
        return self.power.phantom_energy_joules

    def apriori_issue_estimate(self, op_class: int) -> float:
        """A-priori per-issue current estimate (for the damping baseline)."""
        return self.power.apriori_issue_estimate(op_class)
