"""Save and load synthetic traces (.npz).

Generating a 500k-instruction trace takes a moment and experiments often
reuse the same trace across many configurations; serializing them makes
runs reproducible byte-for-byte across machines and lets users inspect or
hand-modify instruction streams.

The profile travels with the trace (as a JSON side field) so a loaded
trace knows where it came from; loading validates column consistency.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np

from repro.errors import TraceError
from repro.uarch.trace import SyntheticTrace, WorkloadProfile

__all__ = ["save_trace", "load_trace"]

_FORMAT_VERSION = 1


def save_trace(trace: SyntheticTrace, path: str) -> None:
    """Write a trace (and its profile) to a ``.npz`` file."""
    profile_json = json.dumps(dataclasses.asdict(trace.profile))
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        profile_json=np.frombuffer(profile_json.encode(), dtype=np.uint8),
        op_class=trace.op_class,
        dep1=trace.dep1,
        dep2=trace.dep2,
        mem_level=trace.mem_level,
        mispredict=trace.mispredict,
        icache_miss=trace.icache_miss,
    )


def load_trace(path: str) -> SyntheticTrace:
    """Read a trace written by :func:`save_trace`."""
    try:
        with np.load(path) as data:
            version = int(data["format_version"])
            if version != _FORMAT_VERSION:
                raise TraceError(
                    f"unsupported trace format version {version}"
                    f" (expected {_FORMAT_VERSION})"
                )
            profile_json = bytes(data["profile_json"]).decode()
            profile = WorkloadProfile(**json.loads(profile_json))
            return SyntheticTrace(
                profile=profile,
                op_class=data["op_class"],
                dep1=data["dep1"],
                dep2=data["dep2"],
                mem_level=data["mem_level"],
                mispredict=data["mispredict"],
                icache_miss=data["icache_miss"],
            )
    except (KeyError, json.JSONDecodeError, ValueError) as error:
        raise TraceError(f"cannot load trace from {path!r}: {error}") from error
